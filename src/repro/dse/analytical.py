"""Analytical-model based DSE engine (``lr.train.dse``).

Workflow reproduced from Section 4:

1. collect (unit size, distance) -> accuracy grids at two training
   wavelengths (432 nm and 632 nm in the paper);
2. fit a gradient-boosted regression model on (lambda, d, D) -> accuracy;
3. predict the design space at a new, nearby wavelength (532 nm);
4. pick the best few predicted points and verify them with a handful of
   emulation runs instead of a full grid search (the paper quotes a 60x
   reduction in emulation iterations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.dse.gbr import GradientBoostingRegressor
from repro.dse.space import DesignPoint, DesignSpace, physics_prior_accuracy, sweep_design_space


@dataclass
class DSEResult:
    """Outcome of an analytical-model DSE run at a target wavelength."""

    target_wavelength: float
    predicted_points: List[DesignPoint]
    verified_points: List[DesignPoint]
    best_point: DesignPoint
    emulation_iterations: int
    grid_size: int

    @property
    def speedup_vs_grid_search(self) -> float:
        """How many fewer emulation runs than exhaustive grid search."""
        return self.grid_size / max(1, self.emulation_iterations)


class AnalyticalDSEModel:
    """Regression model over (wavelength, unit size, distance) -> accuracy."""

    def __init__(
        self,
        n_estimators: int = 300,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        random_state: int = 25,
    ):
        self.regressor = GradientBoostingRegressor(
            n_estimators=n_estimators,
            learning_rate=learning_rate,
            max_depth=max_depth,
            random_state=random_state,
        )
        self._fitted = False

    @staticmethod
    def _features(points: Sequence[DesignPoint]) -> np.ndarray:
        return np.stack([point.features() for point in points])

    def fit(self, points: Sequence[DesignPoint]) -> "AnalyticalDSEModel":
        """Fit on measured design points (typically two wavelength sweeps)."""
        if len(points) < 4:
            raise ValueError("need at least 4 design points to fit the analytical model")
        targets = np.array([point.accuracy for point in points])
        self.regressor.fit(self._features(points), targets)
        self._fitted = True
        return self

    def predict(self, wavelength: float, unit_size: float, distance: float) -> float:
        if not self._fitted:
            raise RuntimeError("fit the analytical model before predicting")
        features = np.array([[wavelength, unit_size, distance]])
        return float(np.clip(self.regressor.predict(features)[0], 0.0, 1.0))

    def predict_space(self, space: DesignSpace) -> List[DesignPoint]:
        """Predict accuracy for every grid point of a design space."""
        points = []
        for unit_size, distance in space.grid():
            accuracy = self.predict(space.wavelength, unit_size, distance)
            points.append(
                DesignPoint(wavelength=space.wavelength, unit_size=unit_size, distance=distance, accuracy=accuracy)
            )
        return points

    def recommend(self, space: DesignSpace, top_k: int = 3) -> List[DesignPoint]:
        """Top-k predicted design points at the target wavelength."""
        predicted = self.predict_space(space)
        return sorted(predicted, key=lambda point: point.accuracy, reverse=True)[:top_k]


def run_analytical_dse(
    training_wavelengths: Sequence[float],
    target_wavelength: float,
    evaluator: Optional[Callable[[float, float, float], float]] = None,
    space_factory: Optional[Callable[[float], DesignSpace]] = None,
    verification_budget: int = 2,
    model: Optional[AnalyticalDSEModel] = None,
) -> DSEResult:
    """End-to-end analytical DSE: sweep training wavelengths, fit, predict, verify.

    ``evaluator(wavelength, unit_size, distance) -> accuracy`` supplies the
    "emulation" measurements for both the training sweeps and the final
    verification runs; it defaults to the physics prior surrogate.
    """
    evaluator = evaluator or (lambda wl, d, z: physics_prior_accuracy(wl, d, z))
    space_factory = space_factory or (lambda wl: DesignSpace(wavelength=wl))

    training_points: List[DesignPoint] = []
    for wavelength in training_wavelengths:
        training_points.extend(sweep_design_space(space_factory(wavelength), evaluator=evaluator))

    model = model or AnalyticalDSEModel()
    model.fit(training_points)

    target_space = space_factory(target_wavelength)
    predicted = model.predict_space(target_space)
    candidates = model.recommend(target_space, top_k=verification_budget)

    verified = [
        DesignPoint(
            wavelength=target_wavelength,
            unit_size=candidate.unit_size,
            distance=candidate.distance,
            accuracy=float(evaluator(target_wavelength, candidate.unit_size, candidate.distance)),
        )
        for candidate in candidates
    ]
    best = max(verified, key=lambda point: point.accuracy)
    return DSEResult(
        target_wavelength=target_wavelength,
        predicted_points=predicted,
        verified_points=verified,
        best_point=best,
        emulation_iterations=len(verified),
        grid_size=target_space.num_points,
    )
