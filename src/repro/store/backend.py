"""Pluggable storage backends: key -> bytes, with atomic publish.

The :class:`ModelStore` facade never touches a filesystem (or a bucket)
directly -- it speaks this small key/value interface, where keys are
``/``-separated relative paths (``blobs/sha256-...``,
``manifests/<name>/v3.json``).  The contract is deliberately shaped like
an object store so an S3/MinIO backend is a drop-in:

* :meth:`~StoreBackend.put` is **atomic and last-writer-wins**: readers
  never observe a partially-written object (the local backend gets this
  from write-temp-then-rename; S3 gets it for free from single-request
  PUT semantics).
* :meth:`~StoreBackend.get` raises ``KeyError`` for missing keys --
  existence checks and reads are separate operations, and reads must not
  invent empty objects.
* :meth:`~StoreBackend.list` returns keys under a prefix (S3
  ``list_objects_v2`` shape), sorted, so version resolution is
  deterministic everywhere.

No partial-failure recovery is required of a backend beyond put-atomicity:
the store's publish order (blob first, manifest last) means a crash can
strand an unreferenced blob, never a manifest pointing at missing bytes.
"""

from __future__ import annotations

import abc
import os
import tempfile
from pathlib import Path
from typing import List

__all__ = ["StoreBackend", "LocalDirBackend"]


class StoreBackend(abc.ABC):
    """Key/value contract every store backend implements.

    Keys are relative ``/``-separated paths; values are opaque bytes.
    """

    #: Short scheme tag (``"local"``, ``"s3"``, ...) used by refs/repr.
    scheme: str = "?"

    @abc.abstractmethod
    def put(self, key: str, data: bytes) -> None:
        """Write ``data`` under ``key`` atomically (full object or nothing)."""

    @abc.abstractmethod
    def get(self, key: str) -> bytes:
        """Return the object's bytes; ``KeyError`` when absent."""

    @abc.abstractmethod
    def exists(self, key: str) -> bool:
        """Cheap existence probe (no data transfer)."""

    @abc.abstractmethod
    def list(self, prefix: str) -> List[str]:
        """All keys under ``prefix``, sorted."""

    @abc.abstractmethod
    def delete(self, key: str) -> None:
        """Remove the object; deleting a missing key is a no-op."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable location (``local:/path``, ``s3://bucket/prefix``)."""


class LocalDirBackend(StoreBackend):
    """Filesystem backend: one directory tree, rename-atomic writes.

    Every :meth:`put` lands in a ``.tmp`` staging directory first and is
    moved into place with ``os.replace`` -- on POSIX that rename is
    atomic within a filesystem, so a reader (another process pulling a
    spec mid-publish) sees either the old object, the new object, or no
    object; never a truncated one.
    """

    scheme = "local"

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._staging = self.root / ".tmp"
        self._staging.mkdir(exist_ok=True)

    def _path(self, key: str) -> Path:
        path = (self.root / key).resolve()
        # Keys are store-internal, but refuse traversal anyway: a backend
        # must never write outside its root.
        if not str(path).startswith(str(self.root.resolve())):
            raise ValueError(f"key {key!r} escapes the store root")
        return path

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, staged = tempfile.mkstemp(dir=self._staging, prefix=path.name + ".")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(staged, path)
        except BaseException:
            try:
                os.unlink(staged)
            except OSError:
                pass
            raise

    def get(self, key: str) -> bytes:
        try:
            return self._path(key).read_bytes()
        except FileNotFoundError:
            raise KeyError(key) from None

    def exists(self, key: str) -> bool:
        return self._path(key).is_file()

    def list(self, prefix: str) -> List[str]:
        base = self._path(prefix)
        if not base.is_dir():
            return []
        keys = [
            str(path.relative_to(self.root)).replace(os.sep, "/")
            for path in base.rglob("*")
            if path.is_file()
        ]
        return sorted(keys)

    def delete(self, key: str) -> None:
        try:
            self._path(key).unlink()
        except FileNotFoundError:
            pass

    def describe(self) -> str:
        return f"local:{self.root}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalDirBackend({str(self.root)!r})"
