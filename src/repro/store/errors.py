"""Error types of the model store.

Everything derives from :class:`StoreError` so callers can catch one
base class.  Integrity failures are their own type: a blob whose bytes
do not hash back to the manifest's digest (or a manifest that does not
parse) must surface as a *typed refusal*, never as a half-built session
or a generic pickle error.
"""

from __future__ import annotations


class StoreError(Exception):
    """Base class for all ``repro.store`` errors."""


class StoreIntegrityError(StoreError):
    """Stored bytes fail verification: hash mismatch or unreadable manifest.

    Raised by every load path *before* any model bytes are deserialized,
    so a corrupted (or tampered-with) store entry can never become a bad
    session -- callers get this error or a bit-exact spec, nothing in
    between.
    """


class ModelNotFoundError(StoreError, KeyError):
    """No published versions exist under the requested model name."""

    def __str__(self) -> str:  # KeyError quotes its repr; keep the message readable
        return Exception.__str__(self)


class VersionNotFoundError(StoreError, KeyError):
    """The model exists but the requested version/hash does not."""

    def __str__(self) -> str:
        return Exception.__str__(self)
