"""``repro.store``: a content-addressed, versioned model store.

The persistence substrate under the serving stack (ROADMAP item 4): a
:class:`ModelStore` persists :class:`~repro.engine.SessionSpec` blobs
under their SHA-256 content hash plus per-version JSON manifests, over a
pluggable :class:`StoreBackend` (:class:`LocalDirBackend` today; the
interface is shaped so an S3/MinIO backend is a drop-in).  Publishes are
atomic (write-temp-then-rename), loads are hash-verified before any
deserialization, and ``name@latest`` / ``name@vN`` / ``name@<hash>``
selectors resolve deterministically.

What the rest of the stack does with it:

* :class:`StoreRef` -- a pinned version as a tiny picklable value with
  ``.build()``; replica workers (local pipes *and* remote
  ``repro-worker --store`` processes) cold-start from the store instead
  of receiving a pickled model from the parent.
* ``InferenceServer(store=...)`` / ``add_model(name, "name@v1")`` --
  store-backed serving, and ``swap_model(name, version)`` performs a
  zero-downtime rolling version swap over the elastic replica-group
  machinery (``POST /v1/models/{name}/swap`` at the gateway).
* ``SessionRegistry(store=...)`` -- LRU-evicted store-backed models
  rebuild from disk on the next use instead of being gone for good.

See ``docs/model_store.md`` for the backend contract, the manifest
schema, and a swap walkthrough; ``benchmarks/bench_model_store.py``
measures publish/load latency, warm-vs-cold replica start, and a
swap under open-loop load.
"""

from repro.store.backend import LocalDirBackend, StoreBackend
from repro.store.errors import (
    ModelNotFoundError,
    StoreError,
    StoreIntegrityError,
    VersionNotFoundError,
)
from repro.store.ref import StoreRef
from repro.store.store import Manifest, ModelStore

__all__ = [
    "ModelStore",
    "Manifest",
    "StoreRef",
    "StoreBackend",
    "LocalDirBackend",
    "StoreError",
    "StoreIntegrityError",
    "ModelNotFoundError",
    "VersionNotFoundError",
]
