"""The model store facade: versioned, content-addressed SessionSpec persistence.

:class:`ModelStore` turns a :class:`~repro.store.backend.StoreBackend`
into a model registry with deploy-without-training semantics:

* **Publish** snapshots a spec (or a model / compiled session) under a
  name.  The spec's canonical bytes are written once under their SHA-256
  digest (``blobs/sha256-<hash>``) -- re-publishing identical content is
  a no-op returning the existing version, so rollbacks and CI re-runs
  cannot balloon the store.  A small JSON manifest
  (``manifests/<name>/v<N>.json``) records the version's identity.
  Order matters: blob first, manifest last, each atomically -- a crash
  can strand an unreferenced blob, never a dangling manifest.
* **Resolve** turns ``name`` / ``name@latest`` / ``name@v3`` /
  ``name@<hash-prefix>`` into one manifest, deterministically.
* **Load** fetches the blob, verifies its bytes hash back to the
  manifest's digest *before* deserializing anything, and rebuilds the
  :class:`~repro.engine.SessionSpec` -- corruption surfaces as a typed
  :class:`~repro.store.errors.StoreIntegrityError`, never a bad session.
  A small LRU cache (keyed by content hash, so it can never serve stale
  bytes) makes repeated loads of a hot version free.
* **Refs** (:meth:`ModelStore.ref`) pin a resolved version into a
  picklable :class:`~repro.store.ref.StoreRef` that worker processes use
  to cold-start replicas from the store instead of receiving the model
  over a pipe.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.engine.spec import SessionSpec
from repro.store.backend import LocalDirBackend, StoreBackend
from repro.store.errors import (
    ModelNotFoundError,
    StoreIntegrityError,
    VersionNotFoundError,
)

__all__ = ["Manifest", "ModelStore"]

#: Manifest schema version; bump on incompatible changes.
_MANIFEST_FORMAT = 1
#: Keys a manifest must carry to be trusted.
_MANIFEST_REQUIRED = ("name", "version", "content_hash", "model_type", "optimize", "dtype", "created_at")
_VERSION_KEY = re.compile(r"^v(\d+)\.json$")
_HEX = re.compile(r"^[0-9a-f]{8,64}$")


@dataclass(frozen=True)
class Manifest:
    """One published version's identity card (the JSON sidecar of a blob)."""

    name: str
    version: int
    content_hash: str
    model_type: str
    optimize: str
    dtype: str
    created_at: str
    blob_bytes: int = 0

    @property
    def version_tag(self) -> str:
        return f"v{self.version}"

    def as_dict(self) -> dict:
        return {
            "format": _MANIFEST_FORMAT,
            "name": self.name,
            "version": self.version,
            "content_hash": self.content_hash,
            "model_type": self.model_type,
            "optimize": self.optimize,
            "dtype": self.dtype,
            "created_at": self.created_at,
            "blob_bytes": self.blob_bytes,
        }


def _blob_key(content_hash: str) -> str:
    return f"blobs/sha256-{content_hash}"


def _manifest_key(name: str, version: int) -> str:
    return f"manifests/{name}/v{int(version)}.json"


def _check_name(name: str) -> str:
    if not name or not isinstance(name, str):
        raise ValueError("model name must be a non-empty string")
    if "@" in name or "/" in name or name.startswith("."):
        raise ValueError(f"model name {name!r} may not contain '@' or '/' (or start with '.')")
    return name


def _as_spec(model_or_spec, session_kwargs: dict) -> SessionSpec:
    """Publishable input -> SessionSpec (mirrors the server's spec-out logic)."""
    if isinstance(model_or_spec, SessionSpec):
        if session_kwargs:
            raise ValueError(
                f"session options {sorted(session_kwargs)} need a model; "
                "a SessionSpec already carries its options"
            )
        return model_or_spec
    if hasattr(model_or_spec, "to_spec"):
        if session_kwargs:
            raise ValueError(
                f"session options {sorted(session_kwargs)} need a model; "
                f"{type(model_or_spec).__name__} is already a compiled session"
            )
        return model_or_spec.to_spec()
    if hasattr(model_or_spec, "export_session"):
        return SessionSpec.from_model(model_or_spec, **session_kwargs)
    raise TypeError(
        f"cannot publish {type(model_or_spec).__name__}: expected a SessionSpec, "
        "a compiled session with to_spec(), or a compilable model"
    )


class ModelStore:
    """Versioned spec registry over a pluggable backend.

    Parameters
    ----------
    backend:
        A :class:`~repro.store.backend.StoreBackend`, or a path (str /
        ``Path``) that is wrapped in a
        :class:`~repro.store.backend.LocalDirBackend`.
    cache_entries:
        Capacity of the in-memory read cache (LRU over content hashes).
        Content addressing makes the cache trivially coherent -- an entry
        can only ever be the bytes its key hashes to -- so the only knob
        is memory.  ``0`` disables caching.

    Thread-safety: all methods are safe to call from multiple threads
    (the cache and version allocation are lock-guarded); multi-*process*
    publishers are serialized by the backend's atomic put (last writer
    wins on a version-number race, which concurrent publishers of the
    same name must coordinate around, as in any registry).
    """

    def __init__(self, backend: Union[StoreBackend, str, Path], *, cache_entries: int = 8):
        if isinstance(backend, (str, Path)):
            backend = LocalDirBackend(backend)
        if not isinstance(backend, StoreBackend):
            raise TypeError(
                f"backend must be a StoreBackend or a directory path, got {type(backend).__name__}"
            )
        if cache_entries < 0:
            raise ValueError("cache_entries must be >= 0")
        self.backend = backend
        self._cache_entries = int(cache_entries)
        self._cache: "OrderedDict[str, SessionSpec]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Publish
    # ------------------------------------------------------------------ #
    def publish(self, name: str, model_or_spec, **session_kwargs) -> Manifest:
        """Persist a new version of ``name``; returns its manifest.

        Accepts a :class:`~repro.engine.SessionSpec`, a compiled session
        (``to_spec()``), or a trainable model (snapshotted via
        ``SessionSpec.from_model(model, **session_kwargs)``).  Publishing
        content that is already the latest *or any earlier* version of
        ``name`` is idempotent: the existing manifest is returned and no
        second blob is written (content addressing dedups storage).
        """
        _check_name(name)
        spec = _as_spec(model_or_spec, session_kwargs)
        payload = spec.canonical_bytes()
        digest = hashlib.sha256(payload).hexdigest()
        with self._lock:
            versions = self._versions_locked(name)
            for manifest in versions:
                if manifest.content_hash == digest:
                    return manifest
            if not self.backend.exists(_blob_key(digest)):
                self.backend.put(_blob_key(digest), payload)
            version = versions[-1].version + 1 if versions else 1
            manifest = Manifest(
                name=name,
                version=version,
                content_hash=digest,
                model_type=spec.model_type,
                optimize=spec.optimize,
                dtype=spec.dtype,
                created_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                blob_bytes=len(payload),
            )
            self.backend.put(
                _manifest_key(name, version),
                json.dumps(manifest.as_dict(), sort_keys=True, indent=1).encode("utf-8"),
            )
            self._cache_put(digest, spec)
            return manifest

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def models(self) -> Tuple[str, ...]:
        """All model names with at least one published version, sorted."""
        names = set()
        for key in self.backend.list("manifests"):
            parts = key.split("/")
            if len(parts) == 3 and _VERSION_KEY.match(parts[2]):
                names.add(parts[1])
        return tuple(sorted(names))

    def versions(self, name: str) -> List[Manifest]:
        """Every published version of ``name``, oldest first.

        Raises :class:`ModelNotFoundError` for names with no versions.
        """
        _check_name(name)
        with self._lock:
            manifests = self._versions_locked(name)
        if not manifests:
            known = ", ".join(self.models()) or "<none>"
            raise ModelNotFoundError(f"no model published under {name!r} (published: {known})")
        return manifests

    def _versions_locked(self, name: str) -> List[Manifest]:
        manifests = []
        for key in self.backend.list(f"manifests/{name}"):
            match = _VERSION_KEY.match(key.split("/")[-1])
            if match:
                manifests.append(self._read_manifest(key, name, int(match.group(1))))
        return sorted(manifests, key=lambda manifest: manifest.version)

    def _read_manifest(self, key: str, name: str, version: int) -> Manifest:
        try:
            raw = self.backend.get(key)
        except KeyError:
            raise VersionNotFoundError(f"model {name!r} has no version v{version}") from None
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StoreIntegrityError(f"manifest {key} is unreadable: {exc}") from exc
        missing = [field for field in _MANIFEST_REQUIRED if field not in data]
        if missing or not isinstance(data.get("version"), int):
            raise StoreIntegrityError(
                f"manifest {key} is malformed (missing/invalid fields: {missing or ['version']})"
            )
        if data["name"] != name or data["version"] != version:
            raise StoreIntegrityError(
                f"manifest {key} does not describe {name}@v{version} "
                f"(says {data['name']}@v{data['version']})"
            )
        return Manifest(
            name=str(data["name"]),
            version=int(data["version"]),
            content_hash=str(data["content_hash"]),
            model_type=str(data["model_type"]),
            optimize=str(data["optimize"]),
            dtype=str(data["dtype"]),
            created_at=str(data["created_at"]),
            blob_bytes=int(data.get("blob_bytes", 0)),
        )

    def resolve(self, name: str, version=None) -> Manifest:
        """``name`` (+ optional version selector) -> one manifest.

        ``version`` may be ``None``/``"latest"`` (newest version), an
        ``int`` or ``"vN"`` tag, or a content-hash hex prefix (>= 8
        chars, must match exactly one version).  The combined
        ``"name@selector"`` form is accepted in ``name`` when ``version``
        is omitted.
        """
        if version is None and "@" in name:
            name, _, version = name.partition("@")
        manifests = self.versions(name)
        if version is None or version == "latest":
            return manifests[-1]
        if isinstance(version, int) or (isinstance(version, str) and version.isdigit()):
            number = int(version)
        elif isinstance(version, str) and version.startswith("v") and version[1:].isdigit():
            number = int(version[1:])
        elif isinstance(version, str) and _HEX.match(version.lower()):
            prefix = version.lower()
            matches = [m for m in manifests if m.content_hash.startswith(prefix)]
            if len(matches) == 1:
                return matches[0]
            detail = "matches no version" if not matches else f"is ambiguous ({len(matches)} versions)"
            raise VersionNotFoundError(f"hash prefix {prefix!r} {detail} of model {name!r}")
        else:
            raise VersionNotFoundError(
                f"unrecognized version selector {version!r} for model {name!r} "
                "(use 'latest', 'vN', or a content-hash prefix)"
            )
        for manifest in manifests:
            if manifest.version == number:
                return manifest
        tags = ", ".join(m.version_tag for m in manifests)
        raise VersionNotFoundError(f"model {name!r} has no version v{number} (published: {tags})")

    # ------------------------------------------------------------------ #
    # Load
    # ------------------------------------------------------------------ #
    def load(self, name: str, version=None) -> SessionSpec:
        """Fetch + verify + rebuild the spec for ``name`` at ``version``.

        The blob's bytes are re-hashed and compared against the
        manifest's digest before any deserialization; a mismatch (bit
        rot, truncation, tampering) raises
        :class:`~repro.store.errors.StoreIntegrityError`.
        """
        return self.load_manifest(self.resolve(name, version))

    def load_manifest(self, manifest: Manifest) -> SessionSpec:
        """Like :meth:`load` for an already-resolved manifest."""
        with self._lock:
            cached = self._cache.get(manifest.content_hash)
            if cached is not None:
                self._cache.move_to_end(manifest.content_hash)
                return cached
        try:
            payload = self.backend.get(_blob_key(manifest.content_hash))
        except KeyError:
            raise StoreIntegrityError(
                f"{manifest.name}@{manifest.version_tag}: blob "
                f"sha256-{manifest.content_hash[:12]}... is missing from {self.backend.describe()}"
            ) from None
        digest = hashlib.sha256(payload).hexdigest()
        if digest != manifest.content_hash:
            raise StoreIntegrityError(
                f"{manifest.name}@{manifest.version_tag}: blob bytes hash to {digest[:12]}..., "
                f"manifest says {manifest.content_hash[:12]}... -- refusing to deserialize"
            )
        try:
            spec = SessionSpec.from_canonical_bytes(payload)
        except ValueError as exc:
            raise StoreIntegrityError(
                f"{manifest.name}@{manifest.version_tag}: verified blob does not decode "
                f"to a SessionSpec ({exc})"
            ) from exc
        with self._lock:
            self._cache_put(manifest.content_hash, spec)
        return spec

    def ref(self, name: str, version=None):
        """Pin ``name@version`` into a picklable :class:`~repro.store.ref.StoreRef`.

        The selector is resolved *now* (so ``latest`` means the same
        version on every replica that receives the ref), and the ref
        carries the content hash -- a worker's load is verified against
        the exact bytes this resolution saw.
        """
        from repro.store.ref import StoreRef

        manifest = self.resolve(name, version)
        return StoreRef(
            scheme=self.backend.scheme,
            location=self.backend.describe().split(":", 1)[1],
            name=manifest.name,
            version=manifest.version,
            content_hash=manifest.content_hash,
            model_type=manifest.model_type,
        )

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def delete_version(self, name: str, version) -> Manifest:
        """Remove one version's manifest; its blob too once unreferenced.

        Content addressing makes this safe: the blob is only deleted when
        no remaining version of *any* model references its hash.
        """
        manifest = self.resolve(name, version)
        with self._lock:
            self.backend.delete(_manifest_key(name, manifest.version))
            still_referenced = any(
                other.content_hash == manifest.content_hash
                for model in self.models()
                for other in self._versions_locked(model)
            )
            if not still_referenced:
                self.backend.delete(_blob_key(manifest.content_hash))
                self._cache.pop(manifest.content_hash, None)
        return manifest

    def _cache_put(self, digest: str, spec: SessionSpec) -> None:
        if self._cache_entries == 0:
            return
        self._cache[digest] = spec
        self._cache.move_to_end(digest)
        while len(self._cache) > self._cache_entries:
            self._cache.popitem(last=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelStore({self.backend.describe()}, models={list(self.models())})"
