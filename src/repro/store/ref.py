"""Store refs: a pinned model version as a picklable, buildable value.

A :class:`StoreRef` is what crosses process boundaries *instead of* a
multi-megabyte pickled :class:`~repro.engine.SessionSpec` once a model
lives in a store: backend coordinates + name + resolved version +
content hash, a few hundred bytes.  It deliberately quacks like a spec
where the cluster needs it to -- ``ref.build()`` compiles a session and
``ref.model_type`` names the family -- so
:class:`~repro.cluster.ReplicaGroup`, both transports, and the
``repro-worker`` init handshake carry it unchanged: a worker receiving a
ref cold-starts by pulling verified bytes from the store, not from the
parent's pipe.

The content hash pins identity end-to-end: whatever replica on whatever
host resolves the ref, the loaded bytes must hash back to the digest
recorded when the ref was minted (``latest`` is resolved at mint time,
never re-resolved downstream).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.store.errors import StoreIntegrityError

__all__ = ["StoreRef"]


@dataclass(frozen=True)
class StoreRef:
    """One resolved ``name@version`` in one store, pinned by content hash."""

    scheme: str
    location: str  # backend coordinates: directory path for "local"
    name: str
    version: int
    content_hash: str
    model_type: str = "?"

    @property
    def version_tag(self) -> str:
        return f"v{self.version}"

    def with_location(self, location) -> "StoreRef":
        """The same pinned version, read from different backend coordinates.

        This is how ``repro-worker --store DIR`` serves refs minted
        against a parent-side path: the hash still guarantees the bytes
        are the ones the parent pinned, wherever they were replicated.
        """
        return replace(self, location=str(location))

    def open_store(self):
        """Open the backing :class:`~repro.store.ModelStore`."""
        from repro.store.backend import LocalDirBackend
        from repro.store.store import ModelStore

        if self.scheme != "local":
            raise StoreIntegrityError(
                f"no backend registered for store scheme {self.scheme!r} "
                f"(this build supports: local)"
            )
        return ModelStore(LocalDirBackend(self.location))

    def load_spec(self):
        """Pull + hash-verify the pinned spec from the store."""
        store = self.open_store()
        manifest = store.resolve(self.name, self.version)
        if manifest.content_hash != self.content_hash:
            raise StoreIntegrityError(
                f"{self.name}@{self.version_tag} in {self.location} carries hash "
                f"{manifest.content_hash[:12]}..., but this ref pinned "
                f"{self.content_hash[:12]}... -- the version was republished under us"
            )
        return store.load_manifest(manifest)

    def build(self):
        """Compile a fresh session from the stored spec (worker cold-start)."""
        return self.load_spec().build()

    def describe(self) -> dict:
        """JSON-friendly identity (what ``stats()``/``describe()`` surface)."""
        return {
            "name": self.name,
            "version": self.version_tag,
            "content_hash": self.content_hash,
            "store": f"{self.scheme}:{self.location}",
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StoreRef({self.name}@{self.version_tag}, sha256-{self.content_hash[:12]}..., "
            f"{self.scheme}:{self.location})"
        )


def as_store_ref(obj) -> Optional[StoreRef]:
    """``obj`` when it is a :class:`StoreRef`, else ``None`` (registry seam)."""
    return obj if isinstance(obj, StoreRef) else None
