"""Declarative model construction from plain-dictionary specs.

The paper's DSL builds DONNs from a handful of named hyper-parameters
(``sys_size``, ``pixel_size``, ``distance``, ``wavelength``, ``approx``,
``num_layers``, detector layout, device levels).  ``build_donn`` accepts
exactly that vocabulary so example scripts and tests read like the
paper's listings.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.codesign.device import DeviceProfile, ideal_profile, slm_profile
from repro.layers.detector import Detector, DetectorRegion
from repro.models.config import DONNConfig
from repro.models.donn import DONN

_CONFIG_KEYS = {
    "sys_size",
    "pixel_size",
    "distance",
    "wavelength",
    "num_layers",
    "num_classes",
    "approx",
    "amplitude_factor",
    "det_size",
    "device_levels",
    "codesign_temperature",
    "pad_factor",
    "seed",
}


def build_config(spec: Dict) -> DONNConfig:
    """Build a :class:`DONNConfig` from a spec dict, rejecting unknown keys."""
    config_keys = {key: value for key, value in spec.items() if key in _CONFIG_KEYS}
    unknown = set(spec) - _CONFIG_KEYS - {"detector", "device", "codesign"}
    if unknown:
        raise ValueError(f"unknown spec keys: {sorted(unknown)}")
    return DONNConfig(**config_keys)


def build_detector(config: DONNConfig, detector_spec: Optional[Dict] = None) -> Detector:
    """Build a detector from an optional spec (explicit regions or layout)."""
    grid = config.grid
    if not detector_spec:
        return Detector(grid, num_classes=config.num_classes, det_size=config.det_size)
    if "regions" in detector_spec:
        regions = [DetectorRegion(**region) for region in detector_spec["regions"]]
        return Detector(grid, regions=regions)
    if "x_loc" in detector_spec and "y_loc" in detector_spec:
        return Detector(
            grid,
            x_loc=detector_spec["x_loc"],
            y_loc=detector_spec["y_loc"],
            det_size=detector_spec.get("det_size", config.det_size),
        )
    return Detector(grid, num_classes=detector_spec.get("num_classes", config.num_classes), det_size=config.det_size)


def _build_device(spec: Optional[Dict], config: DONNConfig) -> Optional[DeviceProfile]:
    if spec is None:
        return None
    kind = spec.get("kind", "slm")
    levels = spec.get("levels", config.device_levels)
    if kind == "slm":
        return slm_profile(num_levels=levels, seed=spec.get("seed"))
    if kind == "ideal":
        return ideal_profile(num_levels=levels)
    raise ValueError(f"unknown device kind {kind!r}")


def build_donn(spec: Dict, rng: Optional[np.random.Generator] = None) -> DONN:
    """Build a complete DONN system from a declarative spec.

    Example
    -------
    >>> model = build_donn({
    ...     "sys_size": 64, "pixel_size": 36e-6, "distance": 0.1,
    ...     "wavelength": 532e-9, "num_layers": 3, "num_classes": 10,
    ...     "codesign": True, "device": {"kind": "slm", "levels": 64},
    ... })
    """
    config = build_config(spec)
    detector = build_detector(config, spec.get("detector"))
    device = _build_device(spec.get("device"), config) if spec.get("codesign") or spec.get("device") else None
    if spec.get("codesign") and device is None:
        device = slm_profile(num_levels=config.device_levels)
    return DONN(config, device_profile=device if spec.get("codesign") else None, detector=detector, rng=rng)


def spec_from_config(config: DONNConfig) -> Dict:
    """Round-trip a config back to a spec dictionary."""
    return config.to_dict()
