"""User-facing domain-specific language (the ``lightridge``-style front end).

* :mod:`~repro.dsl.builder` -- declarative specs (plain dictionaries) ->
  configured models, so a DONN system can be described without touching
  the optics modules directly.
* :mod:`~repro.dsl.flow` -- the end-to-end agile design flow of Figure 3:
  DSE, regularized/codesign training, deployment-file generation and a
  final hardware-emulation validation, driven from one call.
"""

from repro.dsl.builder import build_config, build_donn, build_detector, spec_from_config
from repro.dsl.flow import DesignFlow, DesignFlowResult

__all__ = [
    "build_config",
    "build_donn",
    "build_detector",
    "spec_from_config",
    "DesignFlow",
    "DesignFlowResult",
]
