"""The end-to-end agile design flow of Figure 3.

``DesignFlow`` strings together the framework stages the paper automates:

1. **DSE** -- pick diffraction distance / unit size for the target
   wavelength with the analytical DSE engine;
2. **raw training** -- train the regularized emulation model;
3. **codesign training** -- continue with the hardware-aware
   (Gumbel-Softmax) layers for the chosen device;
4. **fabrication dump** -- emit SLM voltage maps / mask thicknesses;
5. **deployment validation** -- run the emulated-hardware testbench and
   report the out-of-box accuracy and simulation/hardware correlation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.regularization import build_regularized_donn
from repro.codesign.device import DeviceProfile, slm_profile
from repro.dse.analytical import DSEResult, run_analytical_dse
from repro.dse.space import physics_prior_accuracy
from repro.hardware.deploy import DeploymentReport, HardwareTestbench, dump_slm_configuration, to_system
from repro.models.config import DONNConfig
from repro.models.donn import DONN
from repro.train.loop import Trainer, TrainingResult


@dataclass
class DesignFlowResult:
    """Everything produced by one end-to-end design-flow run."""

    config: DONNConfig
    dse_result: Optional[DSEResult]
    raw_training: TrainingResult
    codesign_training: Optional[TrainingResult]
    deployment: Optional[DeploymentReport]
    fabrication_files: List[Path] = field(default_factory=list)


class DesignFlow:
    """Drive the LightRidge design flow for a classification task.

    Parameters
    ----------
    base_config:
        Starting configuration; DSE may update ``distance`` and
        ``pixel_size``.
    device_profile:
        Target hardware for codesign training and deployment (default: a
        synthetic LC2012-style SLM).
    run_dse:
        Whether to run the analytical DSE stage (stage 1 of Figure 3).
    """

    def __init__(
        self,
        base_config: DONNConfig,
        device_profile: Optional[DeviceProfile] = None,
        run_dse: bool = True,
        dse_training_wavelengths: Sequence[float] = (432e-9, 632e-9),
        seed: int = 0,
    ):
        self.base_config = base_config
        self.device_profile = device_profile or slm_profile(num_levels=base_config.device_levels)
        self.run_dse = run_dse
        self.dse_training_wavelengths = tuple(dse_training_wavelengths)
        self.seed = seed

    # ------------------------------------------------------------------ #
    def explore(self) -> Optional[DSEResult]:
        """Stage 1: analytical DSE at the target wavelength."""
        if not self.run_dse:
            return None
        return run_analytical_dse(
            training_wavelengths=self.dse_training_wavelengths,
            target_wavelength=self.base_config.wavelength,
            evaluator=lambda wl, d, z: physics_prior_accuracy(wl, d, z, system_size=self.base_config.sys_size),
        )

    def _config_from_dse(self, dse_result: Optional[DSEResult]) -> DONNConfig:
        if dse_result is None:
            return self.base_config
        best = dse_result.best_point
        return self.base_config.with_updates(pixel_size=best.unit_size, distance=best.distance)

    # ------------------------------------------------------------------ #
    def run(
        self,
        train_images: np.ndarray,
        train_labels: np.ndarray,
        test_images: np.ndarray,
        test_labels: np.ndarray,
        raw_epochs: int = 3,
        codesign_epochs: int = 2,
        learning_rate: float = 0.3,
        batch_size: int = 32,
        fabrication_dir: Optional[Path] = None,
        codesign: bool = True,
        validate_deployment: bool = True,
    ) -> DesignFlowResult:
        """Run stages 1-5 and return every artefact."""
        dse_result = self.explore()
        config = self._config_from_dse(dse_result)

        # Stage 2: raw (regularized, continuous-phase) training.
        raw_model = build_regularized_donn(config, train_images[: min(8, len(train_images))])
        config = raw_model.config
        trainer = Trainer(raw_model, num_classes=config.num_classes, learning_rate=learning_rate, batch_size=batch_size, seed=self.seed)
        raw_training = trainer.fit(train_images, train_labels, epochs=raw_epochs, test_images=test_images, test_labels=test_labels)

        codesign_training = None
        deployed_model = raw_model
        if codesign:
            # Stage 3: hardware-aware codesign training over device levels.
            codesign_model = DONN(config, device_profile=self.device_profile)
            self._warm_start_codesign(codesign_model, raw_model)
            codesign_trainer = Trainer(
                codesign_model,
                num_classes=config.num_classes,
                learning_rate=learning_rate,
                batch_size=batch_size,
                seed=self.seed,
            )
            codesign_training = codesign_trainer.fit(
                train_images, train_labels, epochs=codesign_epochs, test_images=test_images, test_labels=test_labels
            )
            deployed_model = codesign_model

        # Stage 4: fabrication / configuration dump.
        fabrication_files: List[Path] = []
        if fabrication_dir is not None:
            records = to_system(deployed_model, self.device_profile)
            fabrication_files = dump_slm_configuration(records, fabrication_dir)

        # Stage 5: deployment validation on the emulated hardware.
        deployment = None
        if validate_deployment:
            testbench = HardwareTestbench(deployed_model, profile=self.device_profile, seed=self.seed)
            deployment = testbench.report(test_images, test_labels)

        return DesignFlowResult(
            config=config,
            dse_result=dse_result,
            raw_training=raw_training,
            codesign_training=codesign_training,
            deployment=deployment,
            fabrication_files=fabrication_files,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _warm_start_codesign(codesign_model: DONN, raw_model: DONN) -> None:
        """Initialise codesign logits from the raw model's trained phases.

        Each unit's logit vector is seeded so the level nearest the trained
        continuous phase starts with the highest probability.
        """
        profile = codesign_model.device_profile
        if profile is None:
            return
        for codesign_layer, raw_layer in zip(codesign_model.diffractive_layers, raw_model.diffractive_layers):
            phase = raw_layer.phase_values()
            distance = np.angle(np.exp(1j * (phase[..., None] - profile.phases)))
            codesign_layer.logits.data = -np.abs(distance) * 4.0
