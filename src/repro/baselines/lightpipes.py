"""A LightPipes-style reference emulator (runtime baseline of Table 1 / Figs. 8-9).

LightPipes computes the same scalar diffraction physics as LightRidge but
is built as a general-purpose teaching tool: fields are processed one at a
time (no batching), the 2-D transforms are evaluated as explicit
DFT-matrix products (no radix-2 FFT fusion), and each physical step
(transform, transfer-function multiply, inverse transform, phase screen)
is a separate pass over a fresh array (no operator fusion).  This module
reproduces exactly that computational profile, which makes it

* a *numerical cross-check*: its output field agrees with the optimised
  kernels to floating-point accuracy (same math, different evaluation
  order), and
* a *runtime baseline*: the speedup of the optimised kernels over this
  implementation has the same origin as the paper's LightRidge-vs-
  LightPipes speedups (fused, batched, FFT-based tensor kernels vs.
  unfused per-sample processing).

Per-operator timings are recorded so the Figure 8 kernel-level breakdown
(FFT2 / iFFT2 / complex multiply) can be reproduced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.optics.grid import SpatialGrid


@dataclass
class KernelTimings:
    """Cumulative seconds spent in each kernel category."""

    fft2: float = 0.0
    ifft2: float = 0.0
    complex_multiply: float = 0.0
    other: float = 0.0

    def total(self) -> float:
        return self.fft2 + self.ifft2 + self.complex_multiply + self.other

    def as_dict(self) -> Dict[str, float]:
        return {
            "fft2": self.fft2,
            "ifft2": self.ifft2,
            "complex_multiply": self.complex_multiply,
            "other": self.other,
        }

    def __iadd__(self, other: "KernelTimings") -> "KernelTimings":
        self.fft2 += other.fft2
        self.ifft2 += other.ifft2
        self.complex_multiply += other.complex_multiply
        self.other += other.other
        return self


class LightPipesEmulator:
    """Unbatched, unfused scalar-diffraction emulator with DFT-matrix transforms."""

    def __init__(self, grid: SpatialGrid, wavelength: float, distance: float):
        if wavelength <= 0 or distance <= 0:
            raise ValueError("wavelength and distance must be positive")
        self.grid = grid
        self.wavelength = float(wavelength)
        self.distance = float(distance)
        self.timings = KernelTimings()
        size = grid.size
        indices = np.arange(size)
        # Explicit DFT matrices (the "no FFT fusion" evaluation path).
        self._dft = np.exp(-2j * np.pi * np.outer(indices, indices) / size)
        self._idft = np.conj(self._dft) / size
        self._transfer = self._build_transfer_function()

    def _build_transfer_function(self) -> np.ndarray:
        fx, fy = self.grid.frequencies
        argument = 1.0 - (self.wavelength * fx) ** 2 - (self.wavelength * fy) ** 2
        kz = (2.0 * np.pi / self.wavelength) * np.sqrt(argument.astype(complex))
        return np.exp(1j * kz * self.distance)

    # ------------------------------------------------------------------ #
    # Individual physical steps (each a separate, timed pass)
    # ------------------------------------------------------------------ #
    def _forward_transform(self, field: np.ndarray) -> np.ndarray:
        start = time.perf_counter()
        spectrum = self._dft @ field @ self._dft.T
        self.timings.fft2 += time.perf_counter() - start
        return spectrum

    def _inverse_transform(self, spectrum: np.ndarray) -> np.ndarray:
        start = time.perf_counter()
        field = self._idft @ spectrum @ self._idft.T
        self.timings.ifft2 += time.perf_counter() - start
        return field

    def _apply_transfer(self, spectrum: np.ndarray) -> np.ndarray:
        start = time.perf_counter()
        result = np.array(spectrum, copy=True)
        result *= self._transfer
        self.timings.complex_multiply += time.perf_counter() - start
        return result

    def _apply_phase_screen(self, field: np.ndarray, phase: np.ndarray) -> np.ndarray:
        start = time.perf_counter()
        screen = np.exp(1j * np.asarray(phase, dtype=float))
        result = np.array(field, copy=True)
        result *= screen
        self.timings.complex_multiply += time.perf_counter() - start
        return result

    # ------------------------------------------------------------------ #
    # Public emulation API
    # ------------------------------------------------------------------ #
    def propagate(self, field: np.ndarray) -> np.ndarray:
        """Propagate a single 2-D complex field over ``distance``."""
        field = np.asarray(field, dtype=complex)
        if field.shape != self.grid.shape:
            raise ValueError(f"field shape {field.shape} does not match grid {self.grid.shape}")
        spectrum = self._forward_transform(field)
        spectrum = self._apply_transfer(spectrum)
        return self._inverse_transform(spectrum)

    def run_layer(self, field: np.ndarray, phase: np.ndarray) -> np.ndarray:
        """One diffractive layer: propagate then apply the phase screen."""
        return self._apply_phase_screen(self.propagate(field), phase)

    def run_donn(self, fields: Sequence[np.ndarray], phases: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Emulate a multi-layer DONN for a batch, one sample at a time.

        ``fields`` is a sequence of 2-D input fields (the "batch"),
        ``phases`` the per-layer phase patterns.  Returns the per-sample
        output intensity patterns after the final free-space hop.
        """
        outputs: List[np.ndarray] = []
        for field in fields:
            current = np.asarray(field, dtype=complex)
            for phase in phases:
                current = self.run_layer(current, phase)
            current = self.propagate(current)
            start = time.perf_counter()
            intensity = (current * np.conj(current)).real
            self.timings.other += time.perf_counter() - start
            outputs.append(intensity)
        return outputs

    def reset_timings(self) -> None:
        self.timings = KernelTimings()
