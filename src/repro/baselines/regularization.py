"""Complex-valued regularization calibration and the no-regularization baseline.

Section 3.2: because every diffractive layer redistributes (and loses)
optical power, the intensity reaching the detector shrinks rapidly with
depth; the softmax over those tiny per-class intensities saturates to the
uniform distribution and the MSE gradients vanish.  The paper's fix is a
regularization factor ``gamma`` applied to the field amplitude, which
rebalances amplitude and phase gradient scales.

Here ``gamma`` is *calibrated* from the physics: given an untrained model
and a few sample images, :func:`calibrate_amplitude_factor` solves for the
per-layer amplitude scale that brings the detector's per-class intensities
to a target magnitude, using the fact that the output intensity scales as
``gamma ** (2 * (num_layers + 1))`` (one factor at the encoder, one per
layer, squared at the detector).

The *baseline* training of Lin et al. / Zhou et al. (used for comparison
in Figure 7 and Table 5) is simply ``gamma = 1``.
"""

from __future__ import annotations


import numpy as np

from repro.autograd import no_grad
from repro.models.config import DONNConfig
from repro.models.donn import DONN


def calibrate_amplitude_factor(
    model: DONN,
    sample_images: np.ndarray,
    target: float = 1.0,
) -> float:
    """Solve for the amplitude factor that brings detector logits to ``target``.

    Parameters
    ----------
    model:
        An (untrained) DONN built with ``amplitude_factor = 1``.
    sample_images:
        A few representative input images.
    target:
        Desired mean of the maximum per-class collected intensity; values
        of a few units keep the softmax responsive without saturating it.
    """
    if target <= 0:
        raise ValueError("target must be positive")
    with no_grad():
        logits = np.asarray(model(sample_images).data.real)
    mean_max = float(logits.max(axis=-1).mean())
    if mean_max <= 0:
        raise ValueError("model produced no light on the detector; check the configuration")
    exponent = 2.0 * (model.num_layers + 1)
    return float((target / mean_max) ** (1.0 / exponent))


def build_regularized_donn(
    config: DONNConfig,
    sample_images: np.ndarray,
    target: float = 1.0,
    device_profile=None,
) -> DONN:
    """Build a DONN with the complex-valued regularization factor calibrated."""
    probe = DONN(config.with_updates(amplitude_factor=1.0), device_profile=device_profile)
    gamma = calibrate_amplitude_factor(probe, sample_images, target=target)
    return DONN(config.with_updates(amplitude_factor=gamma), device_profile=device_profile)


def build_baseline_donn(config: DONNConfig, device_profile=None) -> DONN:
    """The prior-work training setup: no amplitude regularization (gamma = 1)."""
    return DONN(config.with_updates(amplitude_factor=1.0), device_profile=device_profile)
