"""Digital neural-network baselines of Table 4.

The paper compares the DONN prototype against a two-layer MLP
(``input -> 128 -> 10``) and a small CNN (two Conv2D + MaxPool blocks
followed by two linear layers), both running on conventional digital
platforms.  Both are implemented here on :mod:`repro.autograd` so the
accuracy comparison and the operation-count-based energy model share the
exact same architectures.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd import Module, Parameter, Tensor, functional


def _kaiming(rng: np.random.Generator, shape: Tuple[int, ...], fan_in: int) -> np.ndarray:
    return rng.normal(scale=np.sqrt(2.0 / fan_in), size=shape)


class MLPBaseline(Module):
    """Two-layer perceptron: flatten -> hidden (ReLU) -> classes."""

    def __init__(self, input_size: int, hidden: int = 128, num_classes: int = 10, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.input_size = input_size
        self.weight1 = Parameter(_kaiming(rng, (hidden, input_size), input_size))
        self.bias1 = Parameter(np.zeros(hidden))
        self.weight2 = Parameter(_kaiming(rng, (num_classes, hidden), hidden))
        self.bias2 = Parameter(np.zeros(num_classes))

    def forward(self, images) -> Tensor:
        x = images if isinstance(images, Tensor) else Tensor(np.asarray(images, dtype=float))
        x = x.reshape(x.shape[0], -1)
        hidden = functional.relu(functional.linear(x, self.weight1, self.bias1))
        return functional.linear(hidden, self.weight2, self.bias2)

    def operation_count(self) -> int:
        """MACs per frame, used by the Table 4 energy model."""
        hidden = self.weight1.shape[0]
        classes = self.weight2.shape[0]
        return self.input_size * hidden + hidden * classes


class CNNBaseline(Module):
    """Two Conv2D + MaxPool blocks followed by two linear layers.

    Mirrors the paper's description: 5x5 kernels, 32 then 64 filters,
    stride/padding 2 convolutions, 3x3 max pooling with stride 2.
    """

    def __init__(self, image_size: int = 28, num_classes: int = 10, hidden: int = 128, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.image_size = image_size
        self.conv1 = Parameter(_kaiming(rng, (32, 1, 5, 5), 25))
        self.conv1_bias = Parameter(np.zeros(32))
        self.conv2 = Parameter(_kaiming(rng, (64, 32, 5, 5), 32 * 25))
        self.conv2_bias = Parameter(np.zeros(64))
        flat = self._flat_features(image_size)
        self.weight1 = Parameter(_kaiming(rng, (hidden, flat), flat))
        self.bias1 = Parameter(np.zeros(hidden))
        self.weight2 = Parameter(_kaiming(rng, (num_classes, hidden), hidden))
        self.bias2 = Parameter(np.zeros(num_classes))

    @staticmethod
    def _block_output(size: int) -> int:
        conv = (size + 2 * 2 - 5) // 2 + 1  # conv: kernel 5, stride 2, padding 2
        pool = (conv - 3) // 2 + 1  # pool: kernel 3, stride 2
        return pool

    def _flat_features(self, image_size: int) -> int:
        size = self._block_output(self._block_output(image_size))
        if size <= 0:
            raise ValueError(f"image_size {image_size} is too small for the CNN baseline")
        return 64 * size * size

    def forward(self, images) -> Tensor:
        x = images if isinstance(images, Tensor) else Tensor(np.asarray(images, dtype=float))
        if x.ndim == 3:
            x = x.reshape(x.shape[0], 1, x.shape[1], x.shape[2])
        x = functional.relu(functional.conv2d(x, self.conv1, self.conv1_bias, stride=2, padding=2))
        x = functional.max_pool2d(x, kernel=3, stride=2)
        x = functional.relu(functional.conv2d(x, self.conv2, self.conv2_bias, stride=2, padding=2))
        x = functional.max_pool2d(x, kernel=3, stride=2)
        x = x.reshape(x.shape[0], -1)
        hidden = functional.relu(functional.linear(x, self.weight1, self.bias1))
        return functional.linear(hidden, self.weight2, self.bias2)

    def operation_count(self) -> int:
        """Approximate MACs per frame for the energy model."""
        size1 = (self.image_size + 2 * 2 - 5) // 2 + 1
        ops = size1 * size1 * 32 * 1 * 25
        size1p = (size1 - 3) // 2 + 1
        size2 = (size1p + 2 * 2 - 5) // 2 + 1
        ops += size2 * size2 * 64 * 32 * 25
        size2p = (size2 - 3) // 2 + 1
        flat = 64 * size2p * size2p
        hidden = self.weight1.shape[0]
        classes = self.weight2.shape[0]
        ops += flat * hidden + hidden * classes
        return int(ops)
