"""Baselines the paper compares against.

* :mod:`~repro.baselines.lightpipes` -- a LightPipes-style emulator:
  algorithmically identical scalar diffraction, but implemented the way a
  general-purpose optics education tool is -- per-sample loops, explicit
  DFT-matrix transforms, no operator fusion, no batching -- so it serves
  as the runtime baseline of Table 1 and Figures 8-9 and as an
  independent numerical cross-check of the optimised kernels.
* :mod:`~repro.baselines.digital_nn` -- the MLP and CNN baselines of
  Table 4, built on :mod:`repro.autograd`.
* :mod:`~repro.baselines.regularization` -- amplitude-factor calibration
  for the complex-valued regularization (Section 3.2) and the
  no-regularization "baseline training" of Lin/Zhou-style prior work used
  in Figure 7 and Table 5.
"""

from repro.baselines.lightpipes import LightPipesEmulator, KernelTimings
from repro.baselines.digital_nn import MLPBaseline, CNNBaseline
from repro.baselines.regularization import calibrate_amplitude_factor, build_regularized_donn, build_baseline_donn

__all__ = [
    "LightPipesEmulator",
    "KernelTimings",
    "MLPBaseline",
    "CNNBaseline",
    "calibrate_amplitude_factor",
    "build_regularized_donn",
    "build_baseline_donn",
]
