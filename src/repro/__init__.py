"""``repro``: a from-scratch reproduction of the LightRidge DONN framework.

LightRidge (ASPLOS 2023) is an end-to-end design framework for diffractive
optical neural networks: differentiable optical physics kernels,
runtime-optimised emulation, hardware-software codesign, design space
exploration and deployment backends.  This package rebuilds that stack on
numpy (including the complex-valued autodiff engine that PyTorch provided
in the original) -- see ``DESIGN.md`` for the system inventory and
``EXPERIMENTS.md`` for the reproduced tables and figures.

Quick start
-----------
>>> from repro import DONNConfig, DONN, Trainer, load_digits
>>> config = DONNConfig(sys_size=64, pixel_size=4e-6, distance=0.02,
...                     wavelength=532e-9, num_layers=3)
>>> train_x, train_y, test_x, test_y = load_digits(num_train=200, num_test=50, size=64)
>>> model = DONN(config)
>>> trainer = Trainer(model, num_classes=10, learning_rate=0.3)
>>> history = trainer.fit(train_x, train_y, epochs=2, test_images=test_x, test_labels=test_y)
"""

from repro.autograd import Tensor, Module, Parameter, Sequential, Adam, SGD
from repro.models import DONN, DONNConfig, MultiChannelDONN, SegmentationDONN
from repro.layers import DiffractiveLayer, CodesignDiffractiveLayer, Detector, data_to_cplex
from repro.optics import SpatialGrid, LaserSource, make_propagator
from repro.codesign import DeviceProfile, slm_profile, ideal_profile, thz_mask_profile
from repro.train import Trainer, SegmentationTrainer, evaluate_classifier
from repro.data import load_digits, load_fashion, load_scenes, load_segmentation_scenes
from repro.engine import InferenceSession, compile_model
from repro.serve import InferenceServer, SessionRegistry
from repro.dse import AnalyticalDSEModel, DesignSpace, run_analytical_dse
from repro.dsl import build_donn, DesignFlow
from repro.hardware import HardwareTestbench, to_system, energy_efficiency_table

__version__ = "1.0.0"

__all__ = [
    "Tensor",
    "Module",
    "Parameter",
    "Sequential",
    "Adam",
    "SGD",
    "DONN",
    "DONNConfig",
    "MultiChannelDONN",
    "SegmentationDONN",
    "DiffractiveLayer",
    "CodesignDiffractiveLayer",
    "Detector",
    "data_to_cplex",
    "SpatialGrid",
    "LaserSource",
    "make_propagator",
    "DeviceProfile",
    "slm_profile",
    "ideal_profile",
    "thz_mask_profile",
    "InferenceSession",
    "compile_model",
    "InferenceServer",
    "SessionRegistry",
    "Trainer",
    "SegmentationTrainer",
    "evaluate_classifier",
    "load_digits",
    "load_fashion",
    "load_scenes",
    "load_segmentation_scenes",
    "AnalyticalDSEModel",
    "DesignSpace",
    "run_analytical_dse",
    "build_donn",
    "DesignFlow",
    "HardwareTestbench",
    "to_system",
    "energy_efficiency_table",
    "__version__",
]
