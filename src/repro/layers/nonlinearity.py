"""Optical nonlinearities (the paper's Section 6 extension).

The conclusion of the paper lists all-optical nonlinearity -- realised with
nonlinear optical materials such as saturable absorbers or Kerr media -- as
the main missing ingredient for more expressive DONNs.  This module provides
differentiable models of the two standard thin-film nonlinearities so that
extended architectures can be explored in emulation today:

* :class:`SaturableAbsorber` -- intensity-dependent transmission
  ``T(I) = T_lin + (1 - T_lin) * I / (I + I_sat)``: weak light is absorbed,
  strong light passes, which acts like a smooth ReLU on the optical field.
* :class:`KerrPhaseLayer` -- intensity-dependent phase
  ``phi(I) = n2_coefficient * I``: self-phase modulation, the optical
  analogue of a multiplicative interaction.

Both act point-wise on the complex field and are therefore drop-in layers
for the :class:`~repro.models.donn.DONN` stack: every model family accepts
a ``nonlinearity=`` element that is inserted after each diffractive layer.

Each nonlinearity implements the shared :class:`NonlinearLayer` interface:
``forward`` is the differentiable autograd path used in training, and
``apply_numpy`` is the same point-wise map on a raw ndarray, which is what
the autograd-free inference engine (:mod:`repro.engine`) bakes into its
compiled programs.  The two paths are required to agree to ``1e-10``
(``tests/test_layers_nonlinearity.py``, ``tests/test_engine.py``).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Module, Tensor, ops


class NonlinearLayer(Module):
    """Base class for point-wise all-optical nonlinearities.

    Subclasses model a thin nonlinear film: a map ``field -> field`` that
    acts element-wise on the complex wavefield and depends only on the
    local intensity.  They must provide both the differentiable
    :meth:`forward` (training) and the ndarray :meth:`apply_numpy`
    (inference-engine compilation) with identical numerics.
    """

    def forward(self, field: Tensor) -> Tensor:  # pragma: no cover - interface
        raise NotImplementedError

    def apply_numpy(self, field: np.ndarray) -> np.ndarray:
        """Apply the nonlinearity to a plain complex ndarray.

        Must preserve the input's complex dtype (``complex64`` stays
        ``complex64``) so the engine's reduced-precision mode works.
        """
        raise NotImplementedError  # pragma: no cover - interface


class SaturableAbsorber(NonlinearLayer):
    """Intensity-dependent transmission (a smooth all-optical activation).

    Parameters
    ----------
    saturation_intensity:
        Intensity scale ``I_sat`` at which the absorber bleaches; at
        ``I = I_sat`` the excess transmission reaches half its range.
    linear_transmission:
        Transmission for vanishing intensity (``0 < T_lin <= 1``).
    """

    def __init__(self, saturation_intensity: float = 1.0, linear_transmission: float = 0.1):
        super().__init__()
        if saturation_intensity <= 0:
            raise ValueError("saturation_intensity must be positive")
        if not 0.0 < linear_transmission <= 1.0:
            raise ValueError("linear_transmission must be in (0, 1]")
        self.saturation_intensity = float(saturation_intensity)
        self.linear_transmission = float(linear_transmission)

    def transmission(self, intensity: Tensor) -> Tensor:
        """Amplitude transmission factor as a function of local intensity."""
        saturating = intensity / (intensity + self.saturation_intensity)
        power_transmission = self.linear_transmission + (1.0 - self.linear_transmission) * saturating
        return power_transmission**0.5

    def forward(self, field: Tensor) -> Tensor:
        intensity = field.abs2()
        return field * self.transmission(intensity).to_complex()

    def apply_numpy(self, field: np.ndarray) -> np.ndarray:
        intensity = (field * np.conj(field)).real
        saturating = intensity / (intensity + self.saturation_intensity)
        power_transmission = self.linear_transmission + (1.0 - self.linear_transmission) * saturating
        attenuated = field * np.sqrt(power_transmission)
        # Python-float scalars may promote float32 intermediates on older
        # numpy; pin the field's own complex dtype for reduced precision.
        return attenuated.astype(field.dtype, copy=False)


class KerrPhaseLayer(NonlinearLayer):
    """Kerr-type self-phase modulation: phase shift proportional to intensity."""

    def __init__(self, nonlinear_coefficient: float = 1.0):
        super().__init__()
        self.nonlinear_coefficient = float(nonlinear_coefficient)

    def forward(self, field: Tensor) -> Tensor:
        phase_shift = field.abs2() * self.nonlinear_coefficient
        return field * ops.exp_i(phase_shift)

    def apply_numpy(self, field: np.ndarray) -> np.ndarray:
        phase_shift = (field * np.conj(field)).real * self.nonlinear_coefficient
        modulated = field * np.exp(1j * phase_shift)
        # 1j * float32 promotes to complex128 on pre-NEP50 numpy; pin the
        # field's own complex dtype so reduced-precision serving stays put.
        return modulated.astype(field.dtype, copy=False)


def make_nonlinearity(kind, **kwargs) -> NonlinearLayer:
    """Resolve a nonlinearity spec: an instance, ``None``-like, or a name.

    Accepts a :class:`NonlinearLayer` (returned as-is) or one of the
    string names ``"saturable"`` / ``"kerr"`` with constructor kwargs.
    """
    if isinstance(kind, NonlinearLayer):
        return kind
    key = str(kind).lower()
    if key in ("saturable", "saturable_absorber", "sa"):
        return SaturableAbsorber(**kwargs)
    if key in ("kerr", "kerr_phase"):
        return KerrPhaseLayer(**kwargs)
    raise ValueError(f"unknown nonlinearity {kind!r}; choose 'saturable' or 'kerr'")
