"""Optical nonlinearities (the paper's Section 6 extension).

The conclusion of the paper lists all-optical nonlinearity -- realised with
nonlinear optical materials such as saturable absorbers or Kerr media -- as
the main missing ingredient for more expressive DONNs.  This module provides
differentiable models of the two standard thin-film nonlinearities so that
extended architectures can be explored in emulation today:

* :class:`SaturableAbsorber` -- intensity-dependent transmission
  ``T(I) = T_lin + (1 - T_lin) * I / (I + I_sat)``: weak light is absorbed,
  strong light passes, which acts like a smooth ReLU on the optical field.
* :class:`KerrPhaseLayer` -- intensity-dependent phase
  ``phi(I) = n2_coefficient * I``: self-phase modulation, the optical
  analogue of a multiplicative interaction.

Both act point-wise on the complex field and are therefore drop-in layers
for the :class:`~repro.models.donn.DONN` stack.
"""

from __future__ import annotations

from repro.autograd import Module, Tensor, ops


class SaturableAbsorber(Module):
    """Intensity-dependent transmission (a smooth all-optical activation).

    Parameters
    ----------
    saturation_intensity:
        Intensity scale ``I_sat`` at which the absorber bleaches; at
        ``I = I_sat`` the excess transmission reaches half its range.
    linear_transmission:
        Transmission for vanishing intensity (``0 < T_lin <= 1``).
    """

    def __init__(self, saturation_intensity: float = 1.0, linear_transmission: float = 0.1):
        super().__init__()
        if saturation_intensity <= 0:
            raise ValueError("saturation_intensity must be positive")
        if not 0.0 < linear_transmission <= 1.0:
            raise ValueError("linear_transmission must be in (0, 1]")
        self.saturation_intensity = float(saturation_intensity)
        self.linear_transmission = float(linear_transmission)

    def transmission(self, intensity: Tensor) -> Tensor:
        """Amplitude transmission factor as a function of local intensity."""
        saturating = intensity / (intensity + self.saturation_intensity)
        power_transmission = self.linear_transmission + (1.0 - self.linear_transmission) * saturating
        return power_transmission**0.5

    def forward(self, field: Tensor) -> Tensor:
        intensity = field.abs2()
        return field * self.transmission(intensity).to_complex()


class KerrPhaseLayer(Module):
    """Kerr-type self-phase modulation: phase shift proportional to intensity."""

    def __init__(self, nonlinear_coefficient: float = 1.0):
        super().__init__()
        self.nonlinear_coefficient = float(nonlinear_coefficient)

    def forward(self, field: Tensor) -> Tensor:
        phase_shift = field.abs2() * self.nonlinear_coefficient
        return field * ops.exp_i(phase_shift)
