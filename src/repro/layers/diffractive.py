"""Diffractive layers: trainable phase modulation plus free-space diffraction.

Two variants mirror the paper's API (Table 2):

* :class:`DiffractiveLayer` (``lr.layers.diffractlayer_raw``) keeps a
  continuous phase parameter per diffraction unit -- the "raw" model used
  for fast DSE.
* :class:`CodesignDiffractiveLayer` (``lr.layers.diffractlayer``)
  represents the phase of each unit as a categorical choice over the
  *measured, discrete* phase levels the physical device can realise, made
  differentiable with Gumbel-Softmax (Section 3.2).  After training, each
  unit snaps to a valid hardware level with no extra quantisation loss.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import Module, Parameter, Tensor, ops
from repro.codesign.device import DeviceProfile
from repro.codesign.quantization import gumbel_softmax_probabilities, hard_assignment
from repro.optics.grid import SpatialGrid
from repro.optics.propagation import Propagator, make_propagator


class DiffractiveLayer(Module):
    """Free-space diffraction followed by trainable continuous phase modulation.

    Forward pass (Eq. 5-9): the incoming complex field first diffracts
    over ``distance`` (approximation selected by ``approx``), then each
    diffraction unit multiplies the field by ``gamma * exp(j * phi)`` where
    ``phi`` is the trainable phase and ``gamma`` is the complex-valued
    regularization factor of Section 3.2 (amplitude rescaling that balances
    amplitude/phase gradient magnitudes).
    """

    def __init__(
        self,
        grid: SpatialGrid,
        wavelength: float,
        distance: float,
        approx: str = "rayleigh_sommerfeld",
        amplitude_factor: float = 1.0,
        pad_factor: int = 1,
        phase_init: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.grid = grid
        self.wavelength = float(wavelength)
        self.distance = float(distance)
        self.approx = approx
        self.amplitude_factor = float(amplitude_factor)
        self.propagator: Propagator = make_propagator(
            approx, grid=grid, wavelength=wavelength, distance=distance, pad_factor=pad_factor
        )
        if phase_init is None:
            rng = rng or np.random.default_rng(0)
            phase_init = rng.uniform(0.0, 2.0 * np.pi, size=grid.shape)
        phase_init = np.asarray(phase_init, dtype=float)
        if phase_init.shape != grid.shape:
            raise ValueError(f"phase_init shape {phase_init.shape} does not match grid {grid.shape}")
        self.phase = Parameter(phase_init, name="phase")

    def modulation(self) -> Tensor:
        """Complex per-unit modulation ``gamma * exp(j * phi)``."""
        return ops.exp_i(self.phase) * self.amplitude_factor

    def phase_values(self) -> np.ndarray:
        """Current phase pattern wrapped to [0, 2 pi) (``lr.layers.view()``)."""
        return np.mod(self.phase.data, 2.0 * np.pi)

    def forward(self, field: Tensor) -> Tensor:
        diffracted = self.propagator(field)
        return diffracted * self.modulation()


class CodesignDiffractiveLayer(Module):
    """Hardware-aware diffractive layer trained over discrete device levels.

    Each diffraction unit holds a logit vector over the ``L`` valid phase
    levels of the target device (e.g. the measured response of an SLM, or
    the printable thicknesses of a THz mask).  During training the
    modulation is the Gumbel-Softmax expectation over the *complex*
    responses of the levels, so gradients flow while the layer only ever
    expresses realisable modulations; at deployment each unit takes the
    arg-max level (:meth:`hard_phase_values`), incurring no additional
    quantisation error -- this is what closes the Figure 1 deployment gap.
    """

    def __init__(
        self,
        grid: SpatialGrid,
        wavelength: float,
        distance: float,
        device_profile: DeviceProfile,
        approx: str = "rayleigh_sommerfeld",
        amplitude_factor: float = 1.0,
        temperature: float = 1.0,
        pad_factor: int = 1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.grid = grid
        self.wavelength = float(wavelength)
        self.distance = float(distance)
        self.approx = approx
        self.amplitude_factor = float(amplitude_factor)
        self.device_profile = device_profile
        self.temperature = float(temperature)
        self.rng = rng or np.random.default_rng(0)
        self.propagator: Propagator = make_propagator(
            approx, grid=grid, wavelength=wavelength, distance=distance, pad_factor=pad_factor
        )
        num_levels = device_profile.num_levels
        init = self.rng.normal(scale=0.1, size=grid.shape + (num_levels,))
        self.logits = Parameter(init, name="level_logits")

    # ------------------------------------------------------------------ #
    def level_responses(self) -> np.ndarray:
        """Complex response (amplitude * exp(j phase)) of each device level."""
        return self.device_profile.complex_responses()

    def modulation(self) -> Tensor:
        """Expected complex modulation under (Gumbel-)softmax level probabilities."""
        probabilities = gumbel_softmax_probabilities(
            self.logits,
            temperature=self.temperature,
            rng=self.rng if self.training else None,
        )
        responses = Tensor(self.level_responses())  # (L,)
        expected = (probabilities.to_complex() * responses).sum(axis=-1)
        return expected * self.amplitude_factor

    def hard_level_indices(self) -> np.ndarray:
        """Arg-max device level per diffraction unit (deployment setting)."""
        return hard_assignment(self.logits.data)

    def hard_phase_values(self) -> np.ndarray:
        """Deployed phase pattern: each unit snapped to its chosen level."""
        return self.device_profile.phases[self.hard_level_indices()]

    def hard_modulation(self) -> np.ndarray:
        """Deployed complex modulation (what the physical device applies)."""
        return self.level_responses()[self.hard_level_indices()] * self.amplitude_factor

    def phase_values(self) -> np.ndarray:
        """Expected (soft) phase pattern for visualisation."""
        probabilities = gumbel_softmax_probabilities(self.logits, temperature=self.temperature, rng=None)
        return probabilities.data @ self.device_profile.phases

    def forward(self, field: Tensor) -> Tensor:
        diffracted = self.propagator(field)
        return diffracted * self.modulation()
