"""Model-level DONN building blocks (``lr.layers`` in the paper's DSL).

* :class:`~repro.layers.diffractive.DiffractiveLayer` -- trainable phase
  modulation + diffraction, the ``lr.layers.diffractlayer_raw`` module.
* :class:`~repro.layers.diffractive.CodesignDiffractiveLayer` -- the
  hardware-aware ``lr.layers.diffractlayer`` that trains directly over the
  device's discrete phase levels via Gumbel-Softmax (Section 3.2).
* :class:`~repro.layers.detector.Detector` -- intensity read-out with
  per-class detector regions (``lr.layers.detector``).
* :mod:`~repro.layers.encoding` -- ``data_to_cplex`` input encoding.
* :class:`~repro.layers.skip.OpticalSkipConnection` and
  :class:`~repro.layers.normalization.PlaneNorm` -- the architectural
  pieces of the segmentation DONN (Section 5.6.2).
"""

from repro.layers.diffractive import DiffractiveLayer, CodesignDiffractiveLayer
from repro.layers.detector import Detector, DetectorRegion, grid_region_layout
from repro.layers.encoding import data_to_cplex, resize_images, binarize_images
from repro.layers.skip import OpticalSkipConnection
from repro.layers.normalization import PlaneNorm
from repro.layers.nonlinearity import NonlinearLayer, SaturableAbsorber, KerrPhaseLayer, make_nonlinearity

__all__ = [
    "DiffractiveLayer",
    "CodesignDiffractiveLayer",
    "Detector",
    "DetectorRegion",
    "grid_region_layout",
    "data_to_cplex",
    "resize_images",
    "binarize_images",
    "OpticalSkipConnection",
    "PlaneNorm",
    "NonlinearLayer",
    "SaturableAbsorber",
    "KerrPhaseLayer",
    "make_nonlinearity",
]
