"""Input encoding utilities (``lr.train.utils.data_to_cplex``).

The paper encodes each input image on the intensity/amplitude of the laser
beam with an initially flat phase (Section 3.1), after extending the
28x28 source image to the system resolution (Section 5.2).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.autograd import Tensor
from repro.optics.grid import SpatialGrid

ArrayOrTensor = Union[np.ndarray, Tensor]


def _as_array(images: ArrayOrTensor) -> np.ndarray:
    return images.data if isinstance(images, Tensor) else np.asarray(images, dtype=float)


def resize_images(images: ArrayOrTensor, size: int) -> np.ndarray:
    """Nearest-neighbour resize of a batch ``(B, H, W)`` to ``(B, size, size)``.

    The resized image is centred on the grid: the paper extends 28x28
    digits to the 200x200 SLM plane by upscaling and zero padding.
    """
    array = _as_array(images)
    single = array.ndim == 2
    if single:
        array = array[None]
    batch, height, width = array.shape
    scale = max(1, size // max(height, width))
    up_h, up_w = height * scale, width * scale
    upscaled = np.repeat(np.repeat(array, scale, axis=1), scale, axis=2)
    if up_h > size or up_w > size:
        # Downsample by striding if the source is larger than the target.
        stride_h = int(np.ceil(up_h / size))
        stride_w = int(np.ceil(up_w / size))
        upscaled = upscaled[:, ::stride_h, ::stride_w]
        up_h, up_w = upscaled.shape[1], upscaled.shape[2]
    canvas = np.zeros((batch, size, size), dtype=float)
    top = (size - up_h) // 2
    left = (size - up_w) // 2
    canvas[:, top : top + up_h, left : left + up_w] = upscaled
    return canvas[0] if single else canvas


def binarize_images(images: ArrayOrTensor, threshold: float = 0.5) -> np.ndarray:
    """Binarise images as done for the hardware prototype inputs (Section 5.1)."""
    array = _as_array(images)
    return (array >= threshold).astype(float)


def data_to_cplex(
    images: ArrayOrTensor,
    grid: Optional[SpatialGrid] = None,
    size: Optional[int] = None,
    amplitude_factor: float = 1.0,
    phase: float = 0.0,
) -> Tensor:
    """Encode a batch of intensity images as complex input wavefields.

    Parameters
    ----------
    images:
        Real array ``(B, H, W)`` or ``(H, W)`` with non-negative values.
    grid, size:
        Target system resolution; if given and different from the image
        size, images are resized with :func:`resize_images`.
    amplitude_factor:
        Global amplitude scale applied to the encoded wave (a training
        hyper-parameter exposed by the DSL).
    phase:
        Initial phase of the wave; the paper uses 0.
    """
    array = _as_array(images)
    target = size or (grid.size if grid is not None else None)
    if target is not None and array.shape[-1] != target:
        array = resize_images(array, target)
    amplitude = np.sqrt(np.clip(array, 0.0, None)) * amplitude_factor
    field = amplitude * np.exp(1j * phase)
    return Tensor(field.astype(complex))
