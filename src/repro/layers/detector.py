"""Detector plane with per-class read-out regions (``lr.layers.detector``).

The DONN's prediction is made by integrating the light intensity that
falls on a small, pre-defined detector region per class (Section 2.1).
The class whose region collects the most light is the prediction; the
vector of collected intensities plays the role of logits and is fed to the
softmax + MSE loss during training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import Module, Tensor
from repro.optics.grid import SpatialGrid


@dataclass(frozen=True)
class DetectorRegion:
    """A square read-out window: centre coordinates (pixels) and side length."""

    x: int
    y: int
    size: int

    def bounds(self, grid_size: int) -> Tuple[int, int, int, int]:
        """Return clipped (row_start, row_stop, col_start, col_stop)."""
        half = self.size // 2
        row_start = max(0, self.y - half)
        row_stop = min(grid_size, self.y + half + self.size % 2)
        col_start = max(0, self.x - half)
        col_stop = min(grid_size, self.x + half + self.size % 2)
        if row_start >= row_stop or col_start >= col_stop:
            raise ValueError(f"detector region {self} lies outside a {grid_size}x{grid_size} grid")
        return row_start, row_stop, col_start, col_stop


def grid_region_layout(
    grid_size: int,
    num_classes: int,
    det_size: Optional[int] = None,
    margin_fraction: float = 0.2,
) -> List[DetectorRegion]:
    """Place ``num_classes`` square regions evenly on the detector plane.

    Classes are arranged on a near-square lattice (e.g. 2 rows x 5 columns
    for 10 classes) inside a margin, which is how the paper lays out the
    ten MNIST regions "placed evenly on the detector plane".
    """
    if num_classes <= 0:
        raise ValueError("num_classes must be positive")
    rows = int(np.floor(np.sqrt(num_classes)))
    cols = int(np.ceil(num_classes / rows))
    margin = int(margin_fraction * grid_size)
    usable = grid_size - 2 * margin
    if det_size is None:
        det_size = max(2, usable // (2 * max(rows, cols)))
    regions: List[DetectorRegion] = []
    for index in range(num_classes):
        row, col = divmod(index, cols)
        y = margin + int((row + 0.5) * usable / rows)
        x = margin + int((col + 0.5) * usable / cols)
        regions.append(DetectorRegion(x=x, y=y, size=det_size))
    return regions


class Detector(Module):
    """Convert a complex field into per-class collected intensities.

    Parameters
    ----------
    grid:
        Detector-plane sampling grid.
    regions:
        Explicit list of :class:`DetectorRegion`.  Alternatively pass
        ``num_classes`` (and optionally ``det_size``) to lay regions out
        automatically, or ``x_loc``/``y_loc`` lists as in the paper's API.
    """

    def __init__(
        self,
        grid: SpatialGrid,
        regions: Optional[Sequence[DetectorRegion]] = None,
        num_classes: Optional[int] = None,
        det_size: Optional[int] = None,
        x_loc: Optional[Sequence[int]] = None,
        y_loc: Optional[Sequence[int]] = None,
    ):
        super().__init__()
        self.grid = grid
        if regions is not None:
            self.regions = list(regions)
        elif x_loc is not None and y_loc is not None:
            if len(x_loc) != len(y_loc):
                raise ValueError("x_loc and y_loc must have the same length")
            size = det_size or max(2, grid.size // 20)
            self.regions = [DetectorRegion(x=int(x), y=int(y), size=size) for x, y in zip(x_loc, y_loc)]
        elif num_classes is not None:
            self.regions = grid_region_layout(grid.size, num_classes, det_size=det_size)
        else:
            raise ValueError("provide regions, num_classes, or x_loc/y_loc")
        self._masks = self._build_masks()

    @property
    def num_classes(self) -> int:
        return len(self.regions)

    def _build_masks(self) -> np.ndarray:
        masks = np.zeros((len(self.regions), self.grid.size, self.grid.size), dtype=float)
        for index, region in enumerate(self.regions):
            r0, r1, c0, c1 = region.bounds(self.grid.size)
            masks[index, r0:r1, c0:c1] = 1.0
        return masks

    def read_matrix(self) -> np.ndarray:
        """Dense ``(N*N, num_classes)`` read-out matrix.

        Flattened intensity patterns right-multiplied by this matrix give
        the per-class collected intensities; the inference engine caches it
        so both execution paths share one definition of the read-out.
        """
        return self._masks.reshape(self.num_classes, -1).T.copy()

    def region_mask(self) -> np.ndarray:
        """A single 2-D map labelling each pixel with its class index (or -1)."""
        label_map = -np.ones((self.grid.size, self.grid.size), dtype=int)
        for index in range(self.num_classes):
            label_map[self._masks[index] > 0] = index
        return label_map

    def intensity_pattern(self, field: Tensor) -> Tensor:
        """Raw intensity image on the detector (what the CMOS camera records)."""
        return field.abs2()

    def read(self, intensity: Tensor) -> Tensor:
        """Integrate an intensity pattern ``(..., N, N)`` over each region."""
        intensity = intensity if isinstance(intensity, Tensor) else Tensor(intensity)
        batch_shape = intensity.shape[:-2]
        flat = intensity.reshape(batch_shape + (self.grid.size * self.grid.size,))
        masks = Tensor(self._masks.reshape(self.num_classes, -1))
        return flat @ masks.T

    def forward(self, field: Tensor) -> Tensor:
        """Field -> per-class collected intensity (the DONN's logits)."""
        return self.read(self.intensity_pattern(field))
