"""Plane-wise layer normalisation used only during training (Section 5.6.2).

The segmentation DONN applies layer normalisation to the intensity pattern
before the detector *during training only*; at inference the raw optical
intensity is used (the physical system has no normalisation hardware).
``PlaneNorm`` therefore checks ``self.training`` and becomes the identity
in eval mode.
"""

from __future__ import annotations

from typing import Tuple

from repro.autograd import Module, Tensor, functional


class PlaneNorm(Module):
    """Layer normalisation over the spatial plane of a real-valued pattern."""

    def __init__(self, axes: Tuple[int, ...] = (-2, -1), eps: float = 1e-6, training_only: bool = True):
        super().__init__()
        self.axes = axes
        self.eps = eps
        self.training_only = training_only

    def forward(self, pattern: Tensor) -> Tensor:
        if self.training_only and not self.training:
            return pattern
        return functional.layer_norm(pattern, axes=self.axes, eps=self.eps)
