"""Optical skip connection (Section 5.6.2).

Inspired by residual blocks, the skip connection routes a copy of a less
diffracted field around a group of diffractive layers with beam splitters
and mirrors, and recombines it coherently with the group's output.  It
restores high-frequency content that aggressive diffraction washes out,
which the paper shows improves segmentation detail and smooths training.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autograd import Module, ModuleList, Tensor
from repro.optics.elements import BeamSplitter


class OpticalSkipConnection(Module):
    """Wrap a stack of layers with an optical bypass path.

    Forward: the input field is split; one arm traverses ``layers``, the
    other bypasses them; the two arms are recombined with a second beam
    splitter.  ``skip_weight`` sets the power fraction routed through the
    bypass arm (0.5 = balanced splitter).  An optional ``nonlinearity``
    (a :class:`~repro.layers.nonlinearity.NonlinearLayer`) is applied
    after each body layer; the bypass arm stays linear.
    """

    def __init__(self, layers: Sequence[Module], skip_weight: float = 0.5, nonlinearity: Optional[Module] = None):
        super().__init__()
        if not 0.0 < skip_weight < 1.0:
            raise ValueError("skip_weight must be in (0, 1)")
        self.body = ModuleList(layers)
        self.skip_weight = float(skip_weight)
        self.splitter = BeamSplitter()
        self.nonlinearity = nonlinearity

    def forward(self, field: Tensor) -> Tensor:
        through_amplitude = float(np.sqrt(1.0 - self.skip_weight))
        bypass_amplitude = float(np.sqrt(self.skip_weight))
        processed = field * through_amplitude
        for layer in self.body:
            processed = layer(processed)
            if self.nonlinearity is not None:
                processed = self.nonlinearity(processed)
        bypass = field * bypass_amplitude
        return processed + bypass
