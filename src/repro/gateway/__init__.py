"""``repro.gateway``: the HTTP/JSON network front door of the serving stack.

Everything below the gateway already existed -- dynamic batching
(``repro.serve``), process-sharded replica groups (``repro.cluster``),
compiled sessions (``repro.engine``) -- but was reachable only from
inside one Python process.  This package puts an HTTP/1.1 server
(stdlib ``asyncio.start_server``, zero new dependencies) in front of an
:class:`~repro.serve.InferenceServer`:

===========  ===============================  ==============================
``POST``     ``/v1/models/{name}/infer``      single (``input``) or batch
                                              (``inputs``) inference, with
                                              optional per-request ``slo_ms``
``POST``     ``/v1/models/{name}/swap``       zero-downtime version swap
``GET``      ``/v1/models``                   per-model static metadata
``GET``      ``/v1/stats``                    batcher/replica/gateway counters
``GET``      ``/v1/traces``                   recent request traces
                                              (``?slow=N`` for the worst)
``GET``      ``/v1/traces/{id}``              one trace by ``X-Request-Id``
``GET``      ``/metrics``                     Prometheus text exposition
``GET``      ``/healthz``                     liveness probe
===========  ===============================  ==============================

Every response carries ``X-Request-Id`` (client-sent or gateway-minted);
the same id keys the request's trace in ``GET /v1/traces/{id}`` (see
:mod:`repro.obs`).

Overload becomes HTTP the obvious way -- a full batcher queue is ``429``
with ``Retry-After``, an expired SLO is ``504``, a closed or crashed
backend is ``503`` -- with structured ``{"error": {"type", "message",
"status"}}`` bodies throughout.  :class:`GatewayClient` inverts that
mapping back into the serving layer's exception types, so the open-loop
load generator measures HTTP serving with the same outcome bucketing as
in-process serving.

Quick start (see ``docs/gateway.md`` for the full reference)::

    server = InferenceServer(max_batch=16)
    server.add_model("digits", donn_model)
    async with Gateway(server, port=8080):
        ...   # curl http://127.0.0.1:8080/v1/models

or ``python -m repro.gateway`` for a demo model behind a flag-tunable
gateway.  Multi-host serving -- replica workers on other machines over
:class:`~repro.cluster.SocketTransport` -- is one ``cluster_options=
{"workers": [...]}`` away; the deployment walkthrough in the docs covers
it end to end.
"""

from repro.gateway.client import GatewayClient, GatewayError
from repro.gateway.codec import ApiError
from repro.gateway.limits import GatewayLimits
from repro.gateway.server import Gateway

__all__ = [
    "Gateway",
    "GatewayClient",
    "GatewayError",
    "GatewayLimits",
    "ApiError",
]
