"""An asyncio HTTP client for the gateway, with the error mapping inverted.

:class:`GatewayClient` exists for two callers: tests (round-trip the
full wire format against a live gateway) and the loopback benchmark
(``benchmarks/bench_gateway.py``), which drives the open-loop Poisson
load generator through *real* HTTP.  That second caller dictates the
design:

* **Connection pool.**  Open-loop load fires requests at their scheduled
  instants regardless of outstanding answers, so the client must run
  many HTTP exchanges concurrently -- a pool of persistent (keep-alive)
  connections, bounded by ``max_connections``, each carrying one
  request/response exchange at a time.
* **Exception fidelity.**  ``loadgen.run_open_loop`` buckets outcomes by
  catching the serving layer's exception types.  The client therefore
  re-raises the *original* types from the gateway's structured error
  bodies -- ``429/overloaded`` back to
  :class:`~repro.serve.ServerOverloadedError`, ``504/deadline_exceeded``
  back to :class:`~repro.serve.DeadlineExceededError`, and so on -- so a
  load run over HTTP and a load run in-process are bucketed by the exact
  same code.

Anything that does not map cleanly (parse errors, unexpected statuses)
raises :class:`GatewayError`, which carries the status and the server's
structured error type/message.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gateway.codec import json_bytes, read_response
from repro.serve import (
    DeadlineExceededError,
    ServerClosedError,
    ServerOverloadedError,
    UnknownModelError,
)
from repro.store import StoreIntegrityError, VersionNotFoundError

__all__ = ["GatewayClient", "GatewayError"]


class GatewayError(Exception):
    """An HTTP failure with no serving-layer equivalent to re-raise.

    ``request_id`` is the gateway's ``X-Request-Id`` echo when the
    response carried one -- the key into ``GET /v1/traces/{id}``.
    """

    def __init__(
        self, status: int, error_type: str, message: str, *, request_id: Optional[str] = None
    ):
        super().__init__(f"[{status} {error_type}] {message}")
        self.status = int(status)
        self.error_type = str(error_type)
        self.message = str(message)
        self.request_id = request_id


#: ``error.type`` -> the serving-layer exception the gateway mapped from.
_ERROR_TYPES = {
    "overloaded": ServerOverloadedError,
    "deadline_exceeded": DeadlineExceededError,
    "unknown_model": UnknownModelError,
    "unavailable": ServerClosedError,
    "too_many_connections": ServerOverloadedError,
    "unknown_version": VersionNotFoundError,
    "store_integrity": StoreIntegrityError,
}

_Conn = Tuple[asyncio.StreamReader, asyncio.StreamWriter]


class GatewayClient:
    """Pooled keep-alive HTTP client for one gateway endpoint.

    Usable as an async context manager; all methods are coroutines and
    must run on one event loop.  ``max_connections`` bounds concurrent
    exchanges -- additional callers wait for a pooled connection rather
    than stampeding the gateway's connection limit.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        max_connections: int = 16,
        timeout_s: float = 60.0,
    ):
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self._idle: List[_Conn] = []
        self._slots = asyncio.Semaphore(int(max_connections))
        self._closed = False

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    async def _request(
        self, method: str, path: str, payload=None, *, request_id: Optional[str] = None
    ) -> Tuple[int, Dict[str, str], dict]:
        """One exchange on a pooled connection; returns ``(status, headers, body)``."""
        if self._closed:
            raise GatewayError(0, "client_closed", "client is closed")
        body = json_bytes(payload) if payload is not None else b""
        extra = f"X-Request-Id: {request_id}\r\n" if request_id else ""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        async with self._slots:
            reader, writer = await self._acquire()
            try:
                writer.write(head + body)
                await writer.drain()
                status, headers, raw = await asyncio.wait_for(read_response(reader), self.timeout_s)
            except Exception:
                await _discard(writer)
                raise
            if headers.get("connection", "keep-alive").lower() == "close":
                await _discard(writer)
            else:
                self._idle.append((reader, writer))
        parsed = json.loads(raw.decode("utf-8")) if raw else {}
        return status, headers, parsed

    async def _acquire(self) -> _Conn:
        while self._idle:
            reader, writer = self._idle.pop()
            if not reader.at_eof() and not writer.is_closing():
                return reader, writer
            await _discard(writer)
        return await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout_s
        )

    async def close(self) -> None:
        self._closed = True
        idle, self._idle = self._idle, []
        for _, writer in idle:
            await _discard(writer)

    async def __aenter__(self) -> "GatewayClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    @staticmethod
    def _raise_for_error(status: int, body: dict, headers: Optional[Dict[str, str]] = None) -> None:
        error = body.get("error") if isinstance(body, dict) else None
        if status < 400 and error is None:
            return
        error = error or {}
        error_type = str(error.get("type", "unknown"))
        message = str(error.get("message", f"HTTP {status}"))
        request_id = (headers or {}).get("x-request-id")
        mapped = _ERROR_TYPES.get(error_type)
        if mapped is not None:
            exc = mapped(message)
            # The serving-layer types take no extra args; ride the id on
            # the instance so callers can fetch the trace of a failure.
            exc.request_id = request_id
            raise exc
        raise GatewayError(status, error_type, message, request_id=request_id)

    # ------------------------------------------------------------------ #
    # API surface
    # ------------------------------------------------------------------ #
    async def infer(
        self,
        model: str,
        payload,
        slo_ms: Optional[float] = None,
        *,
        request_id: Optional[str] = None,
    ) -> np.ndarray:
        """``POST /v1/models/{model}/infer`` with one payload; one result row.

        ``request_id`` rides as ``X-Request-Id`` and becomes the trace id
        (the gateway mints one otherwise); on failure the raised
        exception carries it back as ``.request_id``.
        """
        request: dict = {"input": np.asarray(payload)}
        if slo_ms is not None:
            request["slo_ms"] = float(slo_ms)
        status, headers, body = await self._request(
            "POST", f"/v1/models/{model}/infer", request, request_id=request_id
        )
        self._raise_for_error(status, body, headers)
        return np.asarray(body["output"], dtype=float)

    async def infer_many(
        self,
        model: str,
        payloads,
        slo_ms: Optional[float] = None,
        *,
        request_id: Optional[str] = None,
    ) -> np.ndarray:
        """Batch variant: ``{"inputs": [...]}``; stacked results."""
        request: dict = {"inputs": [np.asarray(payload) for payload in payloads]}
        if slo_ms is not None:
            request["slo_ms"] = float(slo_ms)
        status, headers, body = await self._request(
            "POST", f"/v1/models/{model}/infer", request, request_id=request_id
        )
        self._raise_for_error(status, body, headers)
        return np.asarray(body["outputs"], dtype=float)

    async def swap_model(self, model: str, version=None) -> dict:
        """``POST /v1/models/{model}/swap`` -- roll onto another stored version.

        ``version`` follows :meth:`repro.store.ModelStore.resolve`:
        ``None``/``"latest"``, ``"vN"``/``N``, or a content-hash prefix.
        Returns the gateway's swap summary (new version tag, content
        hash, replica count, ``changed`` flag).
        """
        payload = {} if version is None else {"version": version}
        status, _, body = await self._request("POST", f"/v1/models/{model}/swap", payload)
        self._raise_for_error(status, body)
        return body

    async def models(self) -> List[dict]:
        status, _, body = await self._request("GET", "/v1/models")
        self._raise_for_error(status, body)
        return body["models"]

    async def stats(self) -> dict:
        status, _, body = await self._request("GET", "/v1/stats")
        self._raise_for_error(status, body)
        return body

    async def health(self) -> dict:
        """``GET /healthz`` -- returns the body even when the answer is 503."""
        _, _, body = await self._request("GET", "/healthz")
        return body

    async def trace(self, trace_id: str) -> dict:
        """``GET /v1/traces/{id}`` -- one retained trace by request id."""
        status, headers, body = await self._request("GET", f"/v1/traces/{trace_id}")
        self._raise_for_error(status, body, headers)
        return body

    async def traces(self, *, slow: Optional[int] = None) -> List[dict]:
        """``GET /v1/traces`` -- recent traces, or the ``slow`` worst."""
        path = "/v1/traces" if slow is None else f"/v1/traces?slow={int(slow)}"
        status, headers, body = await self._request("GET", path)
        self._raise_for_error(status, body, headers)
        return body["traces"]


async def _discard(writer: asyncio.StreamWriter) -> None:
    try:
        writer.close()
        await writer.wait_closed()
    except (ConnectionError, OSError):  # pragma: no cover - teardown race
        pass
