"""``python -m repro.gateway``: a curl-able gateway around a demo DONN.

Boots a digit-classifier DONN behind an :class:`~repro.serve.InferenceServer`
and a :class:`~repro.gateway.Gateway`, prints ready-to-paste curl lines,
and serves until interrupted::

    PYTHONPATH=src python -m repro.gateway --port 8080

    curl http://127.0.0.1:8080/healthz
    curl http://127.0.0.1:8080/v1/models
    curl -X POST http://127.0.0.1:8080/v1/models/digits/infer \
         -H 'Content-Type: application/json' -d "$(python - <<'PY'
    import json; print(json.dumps({"input": [[0.5]*64]*64}))
    PY
    )"

``--replicas N`` runs the model on a process-sharded replica group;
``--workers host:port,...`` additionally attaches remote ``repro-worker``
processes (see ``docs/gateway.md`` for the multi-host walkthrough).
"""

from __future__ import annotations

import argparse
import asyncio
from typing import Optional

from repro.gateway.server import Gateway
from repro.serve import InferenceServer


def build_server(args) -> InferenceServer:
    from repro.models.config import DONNConfig
    from repro.models.donn import DONN

    config = DONNConfig(
        sys_size=args.sys_size,
        pixel_size=36e-6,
        distance=0.1,
        wavelength=532e-9,
        num_layers=3,
        num_classes=10,
        det_size=max(2, args.sys_size // 8),
        seed=0,
    )
    cluster_options = {}
    if args.workers:
        cluster_options["workers"] = [w.strip() for w in args.workers.split(",") if w.strip()]
    server = InferenceServer(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        replicas=max(args.replicas, 0 if cluster_options else 1),
        cluster_options=cluster_options or None,
    )
    server.add_model(args.model_name, DONN(config))
    return server


async def run(args) -> None:
    server = build_server(args)
    async with Gateway(server, host=args.host, port=args.port) as gateway:
        base = gateway.url()
        print(f"repro-gateway listening on {base}", flush=True)
        print(f"  curl {base}healthz")
        print(f"  curl {base}v1/models")
        print(f"  curl {base}v1/stats")
        print(
            f"  curl -X POST {base}v1/models/{args.model_name}/infer "
            f"-d '{{\"input\": [[0.5, ...]] }}'  # {args.sys_size}x{args.sys_size} image",
            flush=True,
        )
        await gateway.serve_forever()


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description="Serve a demo DONN classifier over HTTP/JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default %(default)s)")
    parser.add_argument("--port", type=int, default=8080, help="port; 0 = ephemeral (default %(default)s)")
    parser.add_argument("--sys-size", type=int, default=64, help="optical system size (default %(default)s)")
    parser.add_argument("--model-name", default="digits", help="model name in the URL (default %(default)s)")
    parser.add_argument("--max-batch", type=int, default=16, help="batcher fusion bound (default %(default)s)")
    parser.add_argument("--max-wait-ms", type=float, default=2.0, help="batcher window (default %(default)s)")
    parser.add_argument(
        "--replicas", type=int, default=1,
        help="local worker processes; >= 2 shards the model across a replica group (default %(default)s)",
    )
    parser.add_argument(
        "--workers", default="",
        help="comma-separated host:port list of running repro-worker processes to attach",
    )
    args = parser.parse_args(argv)
    try:
        asyncio.run(run(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
