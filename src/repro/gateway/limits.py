"""Admission bookkeeping of the gateway: bounded connections and in-flight work.

Two independent bounds, both refused *loudly* at the front door rather
than queued invisibly (the same philosophy as the batcher's bounded
queue underneath):

* ``max_connections`` -- simultaneous open TCP connections.  Past it the
  gateway answers ``503`` with ``Retry-After`` and closes; an accept
  backlog nobody is reading is just a queue with no telemetry.
* ``max_inflight`` -- inference requests currently being answered (only
  ``POST .../infer`` counts; health and stats probes must keep working
  exactly when the gateway is saturated).  Past it the gateway answers
  ``429`` before touching the batcher: its queue bound is per *model*,
  and the aggregate across models is the gateway's to enforce.

The gateway's handler runs on one event loop, so plain integer counters
are race-free by construction -- no locks here, on purpose.
"""

from __future__ import annotations

__all__ = ["GatewayLimits"]


class GatewayLimits:
    """Connection/in-flight admission counters for one gateway instance."""

    def __init__(
        self,
        max_connections: int = 64,
        max_inflight: int = 256,
        *,
        retry_after_s: float = 1.0,
    ):
        if max_connections < 1 or max_inflight < 1:
            raise ValueError("limits must be >= 1")
        self.max_connections = int(max_connections)
        self.max_inflight = int(max_inflight)
        #: Hint stamped on 429/503 responses (``Retry-After`` rounds up).
        self.retry_after_s = float(retry_after_s)
        self.open_connections = 0
        self.inflight = 0
        self.total_connections = 0
        self.total_requests = 0
        self.connections_rejected = 0
        self.requests_rejected = 0

    # ------------------------------------------------------------------ #
    # Connections
    # ------------------------------------------------------------------ #
    def try_open_connection(self) -> bool:
        if self.open_connections >= self.max_connections:
            self.connections_rejected += 1
            return False
        self.open_connections += 1
        self.total_connections += 1
        return True

    def close_connection(self) -> None:
        self.open_connections = max(0, self.open_connections - 1)

    # ------------------------------------------------------------------ #
    # Inference requests
    # ------------------------------------------------------------------ #
    def try_begin_request(self) -> bool:
        if self.inflight >= self.max_inflight:
            self.requests_rejected += 1
            return False
        self.inflight += 1
        self.total_requests += 1
        return True

    def end_request(self) -> None:
        self.inflight = max(0, self.inflight - 1)

    def snapshot(self) -> dict:
        """Flat counters for ``GET /v1/stats``."""
        return {
            "open_connections": self.open_connections,
            "max_connections": self.max_connections,
            "inflight": self.inflight,
            "max_inflight": self.max_inflight,
            "total_connections": self.total_connections,
            "total_requests": self.total_requests,
            "connections_rejected": self.connections_rejected,
            "requests_rejected": self.requests_rejected,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GatewayLimits(connections={self.open_connections}/{self.max_connections}, "
            f"inflight={self.inflight}/{self.max_inflight})"
        )
