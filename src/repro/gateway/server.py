"""The gateway itself: an asyncio HTTP server in front of one InferenceServer.

:class:`Gateway` owns the TCP listener (``asyncio.start_server`` -- no
web framework, no new dependencies) and one connection-handler coroutine
per client.  Each handler is a keep-alive loop: parse a request
(:func:`~repro.gateway.codec.read_request`), dispatch it
(:func:`~repro.gateway.routes.dispatch`), write the response, repeat
until the client closes, errors, or sends ``Connection: close``.

Admission control happens before any work: a connection past
``limits.max_connections`` is answered ``503`` + ``Retry-After`` and
closed immediately, and an inference past ``limits.max_inflight`` is
answered ``429`` before it touches a batcher queue.  Everything deeper
(per-model queue bounds, SLO shedding, replica retry) stays where it
already lives -- the gateway only *translates* those outcomes to HTTP.

Ownership: a gateway handed an un-started server starts it on
:meth:`start` and stops it on :meth:`stop`; a server that was already
running when the gateway attached is left running when the gateway
detaches (whoever started it owns it).

::

    server = InferenceServer(max_batch=16)
    server.add_model("digits", donn_model)
    async with Gateway(server, port=8080) as gateway:
        await gateway.serve_forever()      # or poke gateway.port from tests

``python -m repro.gateway`` wires a demo model behind this class for a
curl-able single-command start.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.gateway.codec import (
    DEFAULT_MAX_BODY_BYTES,
    ApiError,
    error_response,
    read_request,
)
from repro.gateway.limits import GatewayLimits
from repro.gateway.routes import dispatch
from repro.obs.trace import new_trace_id
from repro.serve.server import InferenceServer

__all__ = ["Gateway"]


class Gateway:
    """HTTP/JSON front door for an :class:`~repro.serve.InferenceServer`.

    Parameters
    ----------
    server:
        The serving stack to front.  Started on :meth:`start` if (and
        only if) it is not already running; stopped on :meth:`stop` only
        when this gateway started it.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` -- tests and CI smoke runs do).
    limits:
        Admission bounds (:class:`~repro.gateway.limits.GatewayLimits`);
        default 64 connections / 256 in-flight inferences.
    max_body_bytes:
        Request body cap; larger bodies are refused with ``413``.
    """

    def __init__(
        self,
        server: InferenceServer,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        limits: Optional[GatewayLimits] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ):
        self.server = server
        self.host = host
        self._requested_port = int(port)
        self.limits = limits if limits is not None else GatewayLimits()
        self.max_body_bytes = int(max_body_bytes)
        self._listener: Optional[asyncio.AbstractServer] = None
        self._owns_server = False
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        """The actually-bound port (meaningful once started)."""
        if self._listener is not None and self._listener.sockets:
            return self._listener.sockets[0].getsockname()[1]
        return self._requested_port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def uptime_s(self) -> Optional[float]:
        if self._started_at is None:
            return None
        return asyncio.get_running_loop().time() - self._started_at

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    async def start(self) -> "Gateway":
        if self._listener is not None:
            return self
        if not self.server.started:
            await self.server.start()
            self._owns_server = True
        self._listener = await asyncio.start_server(self._handle_connection, self.host, self._requested_port)
        self._started_at = asyncio.get_running_loop().time()
        return self

    async def stop(self) -> None:
        """Stop listening; drain the backing server only if we started it."""
        listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()
            await listener.wait_closed()
        self._started_at = None
        if self._owns_server:
            self._owns_server = False
            await self.server.stop()

    async def serve_forever(self) -> None:
        """Block until cancelled (the ``python -m repro.gateway`` main loop)."""
        if self._listener is None:
            await self.start()
        await self._listener.serve_forever()

    async def __aenter__(self) -> "Gateway":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        if not self.limits.try_open_connection():
            refusal = ApiError(
                503,
                "too_many_connections",
                f"gateway is at its connection limit ({self.limits.max_connections})",
                retry_after_s=self.limits.retry_after_s,
            )
            # Refused before any request was parsed: mint a fresh id so
            # even this response is correlatable in client logs.
            await self._write(
                writer,
                error_response(
                    refusal, keep_alive=False, headers={"X-Request-Id": new_trace_id()}
                ),
            )
            await self._close(writer)
            return
        try:
            while True:
                try:
                    request = await read_request(reader, max_body_bytes=self.max_body_bytes)
                except ApiError as error:
                    # A parser that lost framing cannot trust the next
                    # bytes: answer and hang up.  No parsed headers means
                    # no client-sent id to echo; mint one.
                    await self._write(
                        writer,
                        error_response(
                            error, keep_alive=False, headers={"X-Request-Id": new_trace_id()}
                        ),
                    )
                    return
                if request is None:
                    return  # client closed between requests
                response = await dispatch(self, request)
                await self._write(writer, response)
                if not request.keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            return  # client vanished mid-exchange; nothing to answer
        finally:
            self.limits.close_connection()
            await self._close(writer)

    @staticmethod
    async def _write(writer: asyncio.StreamWriter, payload: bytes) -> None:
        writer.write(payload)
        await writer.drain()

    @staticmethod
    async def _close(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "listening" if self._listener is not None else "idle"
        return f"Gateway(address={self.address!r}, state={state!r})"
