"""Route table and handlers: URL + method -> serving-layer calls.

The gateway's entire API surface lives in :func:`dispatch`:

=========  ==============================  =================================
method     path                            answers
=========  ==============================  =================================
``GET``    ``/healthz``                    liveness + model roster
``GET``    ``/metrics``                    Prometheus text exposition
``GET``    ``/v1/models``                  static per-model metadata
``GET``    ``/v1/stats``                   batcher/replica/gateway counters
``GET``    ``/v1/traces``                  recent traces (``?slow=N`` for worst)
``GET``    ``/v1/traces/{id}``             one retained trace by id
``POST``   ``/v1/models/{name}/infer``     run inference (single or batch)
``POST``   ``/v1/models/{name}/swap``      zero-downtime version swap
=========  ==============================  =================================

Every response -- including every error -- carries ``X-Request-Id``: the
client-sent header when present, a freshly minted id otherwise.  The
same id doubles as the trace id (:mod:`repro.obs`), so a slow request's
HTTP response header is directly the key into ``GET /v1/traces/{id}``.

Handlers speak :class:`~repro.gateway.codec.ApiError` for refusals; the
serving layer's exception taxonomy is mapped onto HTTP statuses in
:func:`map_exception` -- overload becomes ``429 Too Many Requests`` with
``Retry-After`` (back off and come back), an expired deadline becomes
``504 Gateway Timeout`` (the answer is late, not wrong), an unknown
model ``404``, and a closed/crashed backend ``503 Service Unavailable``.
The mapping is the contract :class:`~repro.gateway.client.GatewayClient`
inverts on the other side of the wire, which is what lets the open-loop
load generator bucket HTTP outcomes exactly like in-process ones.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional
from urllib.parse import parse_qs, unquote

import numpy as np

from repro.gateway.codec import (
    ApiError,
    HttpRequest,
    decode_infer_payload,
    decode_json_body,
    error_response,
    json_response,
    text_response,
)
from repro.obs.prom import render_server_metrics
from repro.obs.trace import new_trace_id, use_trace
from repro.obs.tracer import get_tracer
from repro.serve import (
    DeadlineExceededError,
    ServerClosedError,
    ServerOverloadedError,
    UnknownModelError,
)

__all__ = ["dispatch", "map_exception"]


def map_exception(exc: BaseException, retry_after_s: float = 1.0) -> ApiError:
    """The serving layer's exception taxonomy as HTTP statuses."""
    if isinstance(exc, ApiError):
        return exc
    if isinstance(exc, ServerOverloadedError):
        return ApiError(429, "overloaded", str(exc) or "request queue is full", retry_after_s=retry_after_s)
    if isinstance(exc, DeadlineExceededError):
        return ApiError(504, "deadline_exceeded", str(exc) or "latency budget expired in queue")
    if isinstance(exc, UnknownModelError):
        return ApiError(404, "unknown_model", str(exc) or "no such model")
    if isinstance(exc, ServerClosedError):
        return ApiError(503, "unavailable", str(exc) or "server is not serving", retry_after_s=retry_after_s)
    if isinstance(exc, ValueError):
        # The batcher refuses shape/dtype mismatches with ValueError: the
        # request is at fault, not the server.
        return ApiError(400, "invalid_input", str(exc))
    try:
        from repro.cluster.errors import ClusterError
    except Exception:  # pragma: no cover - cluster is part of this package
        ClusterError = ()  # type: ignore[assignment]
    if isinstance(exc, ClusterError):
        # Replica crashes/timeouts surviving the group's retry budget:
        # the backend fleet is unhealthy, not the request.
        return ApiError(503, "unavailable", str(exc) or "no replica available", retry_after_s=retry_after_s)
    try:
        from repro.store import ModelNotFoundError, StoreIntegrityError, VersionNotFoundError
    except Exception:  # pragma: no cover - store is part of this package
        ModelNotFoundError = VersionNotFoundError = StoreIntegrityError = ()  # type: ignore[assignment]
    if isinstance(exc, (ModelNotFoundError, VersionNotFoundError)):
        # The swap target does not exist: the request is at fault (404),
        # the fleet keeps serving its current version.
        return ApiError(404, "unknown_version", str(exc) or "no such model version")
    if isinstance(exc, StoreIntegrityError):
        # Stored bytes failed verification: the store is unhealthy.
        return ApiError(502, "store_integrity", str(exc) or "model store failed verification")
    return ApiError(500, "internal", f"{type(exc).__name__}: {exc}")


async def dispatch(gateway, request: HttpRequest) -> bytes:
    """Answer one parsed request; never raises (errors become responses).

    The request id (``X-Request-Id``: client-sent or minted here) is the
    trace id, and every response path -- success or error -- echoes it.
    """
    keep_alive = request.keep_alive
    rid = request.headers.get("x-request-id") or new_trace_id()
    headers = {"X-Request-Id": rid}
    try:
        if request.path == "/healthz":
            _require_method(request, "GET")
            return _health(gateway, keep_alive, headers)
        if request.path == "/metrics":
            _require_method(request, "GET")
            return _metrics(gateway, keep_alive, headers)
        if request.path == "/v1/models":
            _require_method(request, "GET")
            return json_response(
                {"models": list(gateway.server.describe().values())},
                headers=headers,
                keep_alive=keep_alive,
            )
        if request.path == "/v1/stats":
            _require_method(request, "GET")
            return _stats(gateway, keep_alive, headers)
        if request.path == "/v1/traces":
            _require_method(request, "GET")
            return _traces_index(request, keep_alive, headers)
        trace_id = _trace_path_id(request.path)
        if trace_id is not None:
            _require_method(request, "GET")
            return _trace_detail(trace_id, keep_alive, headers)
        name = _infer_model_name(request.path)
        if name is not None:
            _require_method(request, "POST")
            return await _infer(gateway, name, request, keep_alive, headers, rid)
        name = _model_action_name(request.path, "/swap")
        if name is not None:
            _require_method(request, "POST")
            return await _swap(gateway, name, request, keep_alive, headers)
        raise ApiError(404, "not_found", f"no route for {request.path}")
    except ApiError as error:
        return error_response(error, keep_alive=keep_alive, headers=headers)
    except Exception as exc:  # noqa: BLE001 - the wire gets a 500, not a traceback
        return error_response(map_exception(exc), keep_alive=keep_alive, headers=headers)


def _require_method(request: HttpRequest, method: str) -> None:
    if request.method != method:
        raise ApiError(405, "method_not_allowed", f"{request.path} accepts {method} only")


def _infer_model_name(path: str) -> Optional[str]:
    """``/v1/models/{name}/infer`` -> ``name`` (URL-decoded), else ``None``."""
    return _model_action_name(path, "/infer")


def _model_action_name(path: str, suffix: str) -> Optional[str]:
    """``/v1/models/{name}{suffix}`` -> ``name`` (URL-decoded), else ``None``."""
    prefix = "/v1/models/"
    if not (path.startswith(prefix) and path.endswith(suffix)):
        return None
    name = path[len(prefix) : -len(suffix)]
    if not name or "/" in name:
        return None
    return unquote(name)


def _trace_path_id(path: str) -> Optional[str]:
    """``/v1/traces/{id}`` -> ``id`` (URL-decoded), else ``None``."""
    prefix = "/v1/traces/"
    if not path.startswith(prefix):
        return None
    trace_id = path[len(prefix) :]
    if not trace_id or "/" in trace_id:
        return None
    return unquote(trace_id)


def _health(gateway, keep_alive: bool, headers: Dict[str, str]) -> bytes:
    up = gateway.server.started
    body = {
        "status": "ok" if up else "unavailable",
        "started": up,
        "models": sorted(gateway.server.describe()),
        "uptime_s": gateway.uptime_s,
    }
    return json_response(body, status=200 if up else 503, headers=headers, keep_alive=keep_alive)


def _stats(gateway, keep_alive: bool, headers: Dict[str, str]) -> bytes:
    models = {}
    for name, stats in gateway.server.stats().items():
        # as_dict() already carries the per-replica breakdown and the
        # autoscaler snapshot when the model has them.
        models[name] = stats.as_dict()
    return json_response(
        {"models": models, "gateway": gateway.limits.snapshot()},
        headers=headers,
        keep_alive=keep_alive,
    )


def _metrics(gateway, keep_alive: bool, headers: Dict[str, str]) -> bytes:
    """Prometheus text exposition over everything this process serves."""
    text = render_server_metrics(
        gateway.server.stats(),
        gateway=gateway.limits.snapshot(),
        tracer=get_tracer(),
    )
    return text_response(text, headers=headers, keep_alive=keep_alive)


def _int_query(params: Dict[str, list], key: str, default: int, *, cap: int = 256) -> int:
    values = params.get(key)
    if not values:
        return default
    try:
        value = int(values[-1])
    except ValueError:
        raise ApiError(400, "invalid_request", f"query parameter {key!r} must be an integer") from None
    if value < 1:
        raise ApiError(400, "invalid_request", f"query parameter {key!r} must be >= 1")
    return min(value, cap)


def _traces_index(request: HttpRequest, keep_alive: bool, headers: Dict[str, str]) -> bytes:
    """``GET /v1/traces``: most recent traces, or ``?slow=N`` for the worst."""
    params = parse_qs(request.query)
    unknown = sorted(set(params) - {"slow", "recent"})
    if unknown:
        raise ApiError(400, "invalid_request", f"unknown query parameter(s) {unknown}")
    tracer = get_tracer()
    if "slow" in params:
        traces = tracer.slowest(_int_query(params, "slow", 16))
        order = "slowest"
    else:
        traces = tracer.recent(_int_query(params, "recent", 16))
        order = "recent"
    return json_response(
        {"traces": traces, "order": order, "count": len(traces)},
        headers=headers,
        keep_alive=keep_alive,
    )


def _trace_detail(trace_id: str, keep_alive: bool, headers: Dict[str, str]) -> bytes:
    found = get_tracer().get(trace_id)
    if found is None:
        raise ApiError(
            404,
            "trace_not_found",
            f"no retained trace with id {trace_id!r} (evicted, sampled out, or never seen)",
        )
    return json_response(found, headers=headers, keep_alive=keep_alive)


async def _infer(
    gateway,
    name: str,
    request: HttpRequest,
    keep_alive: bool,
    headers: Dict[str, str],
    rid: str,
) -> bytes:
    tracer = get_tracer()
    trace = tracer.trace(trace_id=rid)
    error_label: Optional[str] = None
    try:
        decode_span = trace.span("gateway.decode") if trace is not None else None
        batch, single, slo_ms = decode_infer_payload(request.body)
        if decode_span is not None:
            decode_span.end().set(model=name, items=len(batch))
        if not gateway.limits.try_begin_request():
            raise ApiError(
                429,
                "overloaded",
                f"gateway is at its in-flight limit ({gateway.limits.max_inflight})",
                retry_after_s=gateway.limits.retry_after_s,
            )
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            # gather() wraps each submit into a task *inside* this block,
            # so every task's copied context carries the trace and the
            # batcher's submit() can pick it up with current_trace().
            with use_trace(trace):
                results = await asyncio.gather(
                    *(gateway.server.submit(name, payload, slo_ms=slo_ms) for payload in batch)
                )
        except Exception as exc:  # noqa: BLE001 - mapped onto the HTTP taxonomy
            raise map_exception(exc, gateway.limits.retry_after_s) from exc
        finally:
            gateway.limits.end_request()
        latency_ms = (loop.time() - started) * 1000.0
        encode_span = trace.span("gateway.encode") if trace is not None else None
        if single:
            body = {"model": name, "output": results[0], "latency_ms": latency_ms}
        else:
            stacked = np.stack(results, axis=0) if results else np.empty((0,))
            body = {"model": name, "outputs": stacked, "count": len(results), "latency_ms": latency_ms}
        response = json_response(body, headers=headers, keep_alive=keep_alive)
        if encode_span is not None:
            encode_span.end()
        if trace is not None:
            trace.root.set(model=name, status=200)
        return response
    except ApiError as error:
        error_label = error.error_type
        if trace is not None:
            trace.root.set(model=name, status=error.status)
        raise
    except Exception as exc:
        error_label = type(exc).__name__
        raise
    finally:
        tracer.finish(trace, error=error_label)


async def _swap(
    gateway, name: str, request: HttpRequest, keep_alive: bool, headers: Dict[str, str]
) -> bytes:
    """Roll ``name`` onto another stored version; in-flight traffic keeps flowing."""
    payload = decode_json_body(request.body) if request.body else {}
    unknown = sorted(set(payload) - {"version"})
    if unknown:
        raise ApiError(
            400, "invalid_request", f"unknown field(s) {unknown}; the swap body takes only 'version'"
        )
    version = payload.get("version")
    if version is not None and not isinstance(version, (str, int)):
        raise ApiError(400, "invalid_request", "'version' must be a string tag or an integer")
    try:
        summary = await gateway.server.swap_model(name, version)
    except Exception as exc:  # noqa: BLE001 - mapped onto the HTTP taxonomy
        raise map_exception(exc, gateway.limits.retry_after_s) from exc
    return json_response(summary, headers=headers, keep_alive=keep_alive)
