"""HTTP/1.1 and JSON codec of the gateway: parse requests, render responses.

The gateway speaks a deliberately small slice of HTTP/1.1 over asyncio
streams -- ``Content-Length`` bodies only (chunked transfer encoding is
refused with ``501``), persistent connections by default, JSON in both
directions.  Everything protocol-shaped lives here so the route handlers
(:mod:`repro.gateway.routes`) deal in Python objects, and the client
(:mod:`repro.gateway.client`) reuses the exact same framing from the
other side of the wire.

Error discipline: every protocol violation raises :class:`ApiError`,
which carries its HTTP status, a stable machine-readable ``type`` and a
human message; :func:`error_response` renders it as the structured body
``{"error": {"type", "message", "status"}}`` every endpoint shares.

JSON floats round-trip exactly in Python (``repr`` emits the shortest
string that parses back to the same double), which is what lets the
gateway promise bit-level ``atol=1e-10`` parity between HTTP responses
and in-process ``compile()`` output.  ``NaN``/``Inf`` -- which are *not*
valid JSON -- are scrubbed to ``null`` before encoding (they appear in
stats percentiles before any traffic has completed).
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "ApiError",
    "HttpRequest",
    "read_request",
    "read_response",
    "render_response",
    "json_response",
    "text_response",
    "error_response",
    "json_bytes",
    "decode_json_body",
    "decode_infer_payload",
]

#: Upper bound on the request line + headers block.
MAX_HEADER_BYTES = 32 * 1024
#: Default upper bound on a request body (a sys-512 float64 image is ~2 MiB
#: of binary; its JSON text is a few times that -- 8 MiB covers a healthy
#: batch at the benchmark sizes without letting one request buffer a DVD).
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ApiError(Exception):
    """A request the gateway refuses, with everything needed to answer it.

    ``error_type`` is the stable machine-readable discriminator clients
    switch on (the HTTP status is advisory for humans and proxies);
    ``retry_after_s`` becomes a ``Retry-After`` header on backpressure
    statuses so well-behaved clients know when to come back.
    """

    def __init__(
        self,
        status: int,
        error_type: str,
        message: str,
        *,
        retry_after_s: Optional[float] = None,
    ):
        super().__init__(message)
        self.status = int(status)
        self.error_type = str(error_type)
        self.message = str(message)
        self.retry_after_s = retry_after_s


@dataclass
class HttpRequest:
    """One parsed request: method, split target, lower-cased headers, body."""

    method: str
    path: str
    query: str = ""
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"


# ---------------------------------------------------------------------- #
# Parsing (server side)
# ---------------------------------------------------------------------- #
async def read_request(
    reader: asyncio.StreamReader, *, max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
) -> Optional[HttpRequest]:
    """Parse one request off the stream; ``None`` on a cleanly closed peer.

    Raises :class:`ApiError` for anything malformed -- the connection
    handler answers it and closes (a parser that lost framing cannot
    trust the next bytes to start a request).
    """
    try:
        blob = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # peer closed between requests: normal keep-alive end
        raise ApiError(400, "bad_request", "truncated HTTP request") from None
    except asyncio.LimitOverrunError:
        raise ApiError(
            431, "headers_too_large", f"request headers exceed {MAX_HEADER_BYTES} bytes"
        ) from None
    if len(blob) > MAX_HEADER_BYTES:
        raise ApiError(431, "headers_too_large", f"request headers exceed {MAX_HEADER_BYTES} bytes")

    lines = blob.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ApiError(400, "bad_request", f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    path, _, query = target.partition("?")

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise ApiError(400, "bad_request", f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise ApiError(
            501, "not_implemented", "chunked transfer encoding is not supported; send Content-Length"
        )
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
        if length < 0:
            raise ValueError
    except ValueError:
        raise ApiError(400, "bad_request", f"invalid Content-Length: {length_text!r}") from None
    if length > max_body_bytes:
        raise ApiError(
            413,
            "payload_too_large",
            f"request body of {length} bytes exceeds the {max_body_bytes}-byte limit",
        )
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ApiError(400, "bad_request", "request body shorter than Content-Length") from None
    return HttpRequest(method=method.upper(), path=path, query=query, headers=headers, body=body)


async def read_response(reader: asyncio.StreamReader) -> Tuple[int, Dict[str, str], bytes]:
    """Client-side twin of :func:`read_request`: one ``(status, headers, body)``."""
    blob = await reader.readuntil(b"\r\n\r\n")
    lines = blob.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ConnectionError(f"malformed status line: {lines[0]!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    body = b""
    length = int(headers.get("content-length", "0"))
    if length:
        body = await reader.readexactly(length)
    return status, headers, body


# ---------------------------------------------------------------------- #
# Rendering
# ---------------------------------------------------------------------- #
def _scrub(obj):
    """JSON-safe copy: numpy scalars/arrays to Python, non-finite to None."""
    if isinstance(obj, dict):
        return {str(key): _scrub(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_scrub(item) for item in obj]
    if isinstance(obj, np.ndarray):
        # Hot path: a numeric array with no non-finite values converts in
        # C (`tolist`), never element-by-element in Python -- inference
        # payloads are exactly this, and the per-request codec cost is
        # what the gateway-overhead benchmark gates on.
        if obj.dtype.kind in "iub":
            return obj.tolist()
        if obj.dtype.kind == "f" and bool(np.isfinite(obj).all()):
            return obj.tolist()
        return _scrub(obj.tolist())
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        value = float(obj)
        return value if math.isfinite(value) else None
    return obj


def json_bytes(obj) -> bytes:
    """Compact UTF-8 JSON with a trailing newline (curl-friendly)."""
    return (json.dumps(_scrub(obj), separators=(",", ":"), allow_nan=False) + "\n").encode("utf-8")


def render_response(
    status: int,
    body: bytes,
    headers: Optional[Dict[str, str]] = None,
    *,
    keep_alive: bool = True,
) -> bytes:
    """One full HTTP/1.1 response as bytes."""
    reason = _REASONS.get(status, "Unknown")
    out = [f"HTTP/1.1 {status} {reason}"]
    merged = {
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
        "Connection": "keep-alive" if keep_alive else "close",
    }
    for name, value in (headers or {}).items():
        merged[name] = str(value)
    out.extend(f"{name}: {value}" for name, value in merged.items())
    return ("\r\n".join(out) + "\r\n\r\n").encode("latin-1") + body


def json_response(
    obj,
    status: int = 200,
    headers: Optional[Dict[str, str]] = None,
    *,
    keep_alive: bool = True,
) -> bytes:
    return render_response(status, json_bytes(obj), headers, keep_alive=keep_alive)


def text_response(
    text: str,
    status: int = 200,
    headers: Optional[Dict[str, str]] = None,
    *,
    keep_alive: bool = True,
) -> bytes:
    """A plain-text response (the ``/metrics`` Prometheus exposition)."""
    merged = {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"}
    merged.update(headers or {})
    return render_response(status, text.encode("utf-8"), merged, keep_alive=keep_alive)


def error_response(
    error: ApiError,
    *,
    keep_alive: bool = True,
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """The shared error envelope: ``{"error": {"type", "message", "status"}}``.

    ``headers`` carries per-request extras (the ``X-Request-Id`` echo);
    a ``Retry-After`` derived from the error is merged in on top.
    """
    merged = dict(headers or {})
    if error.retry_after_s is not None:
        # Retry-After is integer seconds; round up so "0.05s" does not
        # read as "retry immediately".
        merged["Retry-After"] = str(max(1, math.ceil(error.retry_after_s)))
    body = {
        "error": {"type": error.error_type, "message": error.message, "status": error.status}
    }
    return json_response(body, status=error.status, headers=merged, keep_alive=keep_alive)


# ---------------------------------------------------------------------- #
# Inference payloads
# ---------------------------------------------------------------------- #
def decode_json_body(body: bytes) -> dict:
    """The request body as a JSON object, or :class:`ApiError` 400."""
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ApiError(400, "invalid_json", f"request body is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ApiError(400, "invalid_request", "request body must be a JSON object")
    return obj


def decode_infer_payload(body: bytes) -> Tuple[np.ndarray, bool, Optional[float]]:
    """Parse an infer body into ``(batch, single, slo_ms)``.

    Exactly one of ``"input"`` (one payload) or ``"inputs"`` (a list of
    payloads) must be present; ``"slo_ms"`` optionally attaches a
    per-request latency budget.  Unknown keys are refused -- a typo like
    ``"slo"`` silently ignored would *weaken* the caller's SLO, the
    worst possible failure mode for a latency contract.

    ``batch`` always has a leading batch axis (``single`` records
    whether to unwrap the response); shape validation against the model
    happens downstream in the batcher.
    """
    obj = decode_json_body(body)
    unknown = sorted(set(obj) - {"input", "inputs", "slo_ms"})
    if unknown:
        raise ApiError(
            400, "invalid_request", f"unknown field(s) {unknown}; expected input/inputs/slo_ms"
        )
    if ("input" in obj) == ("inputs" in obj):
        raise ApiError(400, "invalid_request", 'provide exactly one of "input" or "inputs"')
    slo_ms = obj.get("slo_ms")
    if slo_ms is not None:
        try:
            slo_ms = float(slo_ms)
        except (TypeError, ValueError):
            raise ApiError(400, "invalid_request", '"slo_ms" must be a number') from None
        if not math.isfinite(slo_ms) or slo_ms <= 0:
            raise ApiError(400, "invalid_request", '"slo_ms" must be a positive finite number')
    single = "input" in obj
    raw = obj["input"] if single else obj["inputs"]
    try:
        batch = np.asarray(raw, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ApiError(400, "invalid_input", f"payload is not numeric array data: {exc}") from None
    if single:
        batch = batch[None]
    elif batch.ndim == 0 or (batch.ndim == 1 and batch.size and not np.ndim(raw[0])):
        raise ApiError(400, "invalid_input", '"inputs" must be a list of payloads')
    return batch, single, slo_ms
