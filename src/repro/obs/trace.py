"""Spans and traces: per-request timing trees on the monotonic clock.

A :class:`Trace` is the story of one request; a :class:`Span` is one
named segment of it (``gateway.decode``, ``serve.queue``,
``serve.dispatch``, ``worker.compute``, ``gateway.encode``).  Spans
carry monotonic-clock timestamps, a parent link, and a small attribute
dict -- enough to answer "which hop ate the budget" without dragging in
an OpenTelemetry dependency.

Design constraints (these shape every decision below):

* **Always-on cheap.**  Recording a span is O(1) (append to a list, two
  clock reads); when a request is sampled out there is *no trace object
  at all* -- instrumentation sites check ``trace is not None`` and touch
  nothing else, so the unsampled hot path allocates nothing.
* **One event loop mutates.**  All span creation happens on the serving
  process's event loop (gateway handler, batcher worker task), so traces
  need no locking.  Worker processes never mutate the parent's trace:
  they ship a compact timing payload back with the reply and the parent
  stitches it in (see :mod:`repro.serve.batcher`).
* **Cross-process clocks do not align.**  ``time.monotonic`` is
  per-process, so a worker's raw timestamps are meaningless here.  The
  worker reports *durations*; the parent anchors the stitched
  ``worker.compute`` span inside its own ``serve.dispatch`` window.
* **Batch fusion is shared structure.**  One fused engine call serves
  many requests, so the batch span is one :class:`Span` *object*
  attached to every member trace -- the shared ``span_id`` is the
  cross-trace link.

Context propagation uses :mod:`contextvars`: :func:`use_trace` installs
the current trace for the enclosed ``await``s (``asyncio`` tasks copy
the context at creation, so ``gather``-ed submits inherit it), and
:func:`current_trace` reads it back inside ``DynamicBatcher.submit``.
A second context variable carries the per-batch observability dict from
the batcher's ``_execute`` into ``ReplicaGroup.infer`` (same task, same
context) without widening the dispatch seam's signature.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "Trace",
    "new_trace_id",
    "new_span_id",
    "current_trace",
    "use_trace",
    "set_dispatch_context",
    "reset_dispatch_context",
    "get_dispatch_context",
]

#: Hard cap on recorded spans per trace -- a runaway instrumentation site
#: must not grow a request's trace without bound.
MAX_SPANS_PER_TRACE = 256

_TRACE: contextvars.ContextVar[Optional["Trace"]] = contextvars.ContextVar(
    "repro_obs_trace", default=None
)
_DISPATCH: contextvars.ContextVar[Optional[dict]] = contextvars.ContextVar(
    "repro_obs_dispatch", default=None
)


#: Per-process random prefix + counter for span ids.  Spans are only ever
#: referenced within the traces of one process (parent links, the shared
#: batch span), so process-local uniqueness suffices -- and a counter is
#: ~15x cheaper than ``uuid4`` on the per-request hot path.
_SPAN_ID_PREFIX = os.urandom(4).hex()
_span_id_counter = itertools.count(int.from_bytes(os.urandom(2), "big"))


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id (also minted as ``X-Request-Id``)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 16-hex-char span id (process-locally unique)."""
    return f"{_SPAN_ID_PREFIX}{next(_span_id_counter) & 0xFFFFFFFF:08x}"


class Span:
    """One named, timed segment of a request.

    ``start_s``/``end_s`` are ``time.monotonic`` instants in *this*
    process; rendering converts them to offsets from the trace root so
    the serialized form is clock-independent.  ``end`` is idempotent
    (first call wins) and ``set`` attaches key-value attributes lazily
    -- a span with no attributes never allocates the dict.
    """

    __slots__ = ("span_id", "name", "parent_id", "start_s", "end_s", "attrs")

    def __init__(
        self,
        name: str,
        *,
        parent_id: Optional[str] = None,
        start_s: Optional[float] = None,
        span_id: Optional[str] = None,
    ):
        self.span_id = span_id if span_id is not None else new_span_id()
        self.name = str(name)
        self.parent_id = parent_id
        self.start_s = time.monotonic() if start_s is None else float(start_s)
        self.end_s: Optional[float] = None
        self.attrs: Optional[Dict[str, Any]] = None

    def end(self, at: Optional[float] = None) -> "Span":
        if self.end_s is None:
            self.end_s = time.monotonic() if at is None else float(at)
        return self

    def set(self, **attrs) -> "Span":
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)
        return self

    @property
    def ended(self) -> bool:
        return self.end_s is not None

    @property
    def duration_ms(self) -> float:
        end = self.end_s if self.end_s is not None else time.monotonic()
        return max(0.0, (end - self.start_s) * 1000.0)

    def as_dict(self, base_s: float) -> dict:
        """JSON-friendly form with offsets relative to the trace root."""
        out = {
            "span_id": self.span_id,
            "name": self.name,
            "parent_id": self.parent_id,
            "start_ms": (self.start_s - base_s) * 1000.0,
            "duration_ms": self.duration_ms,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"{self.duration_ms:.3f}ms" if self.ended else "open"
        return f"Span({self.name!r}, {state})"


class Trace:
    """One request's span tree, rooted at the gateway (or any caller).

    The root span covers the whole traced window; :meth:`span` opens a
    child (parented to the root unless ``parent`` names another span),
    :meth:`attach` records an externally-built span object (the shared
    batch span, the stitched worker span).  :meth:`finish` closes the
    root and freezes the trace for the buffer.
    """

    __slots__ = ("trace_id", "root", "spans", "finished", "dropped")

    def __init__(self, trace_id: Optional[str] = None, name: str = "request"):
        self.trace_id = trace_id if trace_id else new_trace_id()
        self.root = Span(name)
        self.spans: List[Span] = [self.root]
        self.finished = False
        self.dropped = 0

    def span(
        self,
        name: str,
        *,
        parent: Optional[Span] = None,
        start_s: Optional[float] = None,
    ) -> Span:
        """Open (and record) a child span; returns it for ``end()``/``set()``."""
        parent_id = (parent if parent is not None else self.root).span_id
        span = Span(name, parent_id=parent_id, start_s=start_s)
        self.attach(span)
        return span

    def attach(self, span: Span) -> Span:
        """Record an externally-created span (shared batch/worker spans)."""
        if len(self.spans) < MAX_SPANS_PER_TRACE:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    def finish(self, error: Optional[str] = None) -> "Trace":
        """Close the root span; idempotent.  ``error`` lands as a root attr."""
        if error is not None:
            self.root.set(error=str(error))
        self.root.end()
        for span in self.spans:
            # An instrumentation site that failed mid-flight (exception
            # between open and end) must not leave an ever-growing span.
            span.end(self.root.end_s)
        self.finished = True
        return self

    @property
    def duration_ms(self) -> float:
        return self.root.duration_ms

    def find(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def as_dict(self) -> dict:
        base = self.root.start_s
        spans = sorted(self.spans, key=lambda s: (s.start_s, s.name))
        out = {
            "trace_id": self.trace_id,
            "name": self.root.name,
            "duration_ms": self.duration_ms,
            "finished": self.finished,
            "spans": [span.as_dict(base) for span in spans],
        }
        if self.dropped:
            out["dropped_spans"] = self.dropped
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace({self.trace_id!r}, spans={len(self.spans)}, {self.duration_ms:.3f}ms)"


# ---------------------------------------------------------------------- #
# Context propagation
# ---------------------------------------------------------------------- #
def current_trace() -> Optional[Trace]:
    """The trace of the request being served on this task, if any."""
    return _TRACE.get()


@contextmanager
def use_trace(trace: Optional[Trace]):
    """Install ``trace`` as the current trace for the enclosed block.

    Tasks created inside the block (``asyncio.gather``, ``create_task``)
    copy the context at creation and therefore inherit the trace.
    """
    token = _TRACE.set(trace)
    try:
        yield trace
    finally:
        _TRACE.reset(token)


def set_dispatch_context(ctx: Optional[dict]):
    """Install the per-batch observability dict (batcher ``_execute`` only)."""
    return _DISPATCH.set(ctx)


def reset_dispatch_context(token) -> None:
    _DISPATCH.reset(token)


def get_dispatch_context() -> Optional[dict]:
    """Read the per-batch observability dict (``ReplicaGroup.infer``)."""
    return _DISPATCH.get()
