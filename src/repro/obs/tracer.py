"""The per-process tracer: sampling, the trace ring, slow exemplars.

A :class:`Tracer` owns the lifecycle of every :class:`~repro.obs.trace.Trace`
in one process: it decides whether a request is sampled (``sample_rate``
knob -- when a request loses the coin flip the instrumentation sites see
``None`` and allocate nothing), hands out live traces, and files the
finished ones into a :class:`TraceBuffer` -- a bounded ring of recent
traces plus a keep-the-K-worst exemplar set, so the trace a slow request
left behind survives long after fast traffic has churned the ring.

The module-level :func:`get_tracer`/:func:`set_tracer` pair gives the
serving stack one shared tracer per process (the gateway mints traces,
the exposition endpoints read them back) while letting tests inject an
isolated instance.
"""

from __future__ import annotations

import heapq
import itertools
import random
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import Trace

__all__ = ["Tracer", "TraceBuffer", "get_tracer", "set_tracer", "configure"]

#: Default bound on buffered finished traces.
DEFAULT_CAPACITY = 256
#: Default number of slowest traces pinned past ring eviction.
DEFAULT_SLOW_KEEP = 16


class TraceBuffer:
    """Bounded store of finished traces: a recency ring + slow exemplars.

    The ring keeps the last ``capacity`` traces (FIFO eviction); the
    exemplar heap pins the ``slow_keep`` slowest traces seen so far so
    ``GET /v1/traces?slow=N`` can answer "what did the worst requests
    look like" even under heavy churn.  Thread-safe: finishes happen on
    the event loop while scrapes may read from anywhere.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, slow_keep: int = DEFAULT_SLOW_KEEP):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if slow_keep < 0:
            raise ValueError("slow_keep must be >= 0")
        self.capacity = int(capacity)
        self.slow_keep = int(slow_keep)
        self._lock = threading.Lock()
        self._ring: "OrderedDict[str, dict]" = OrderedDict()
        #: Min-heap of ``(duration_ms, tiebreak, trace_id)`` -- the root is
        #: the *fastest* pinned exemplar, evicted first when a slower
        #: trace arrives.
        self._slow_heap: List[Tuple[float, int, str]] = []
        self._slow: Dict[str, dict] = {}
        self._tiebreak = itertools.count()
        self.added = 0
        self.evicted = 0

    def add(self, trace: Trace) -> None:
        frozen = trace.as_dict()
        trace_id = frozen["trace_id"]
        duration = float(frozen.get("duration_ms") or 0.0)
        with self._lock:
            self._ring[trace_id] = frozen
            self._ring.move_to_end(trace_id)
            while len(self._ring) > self.capacity:
                self._ring.popitem(last=False)
                self.evicted += 1
            if self.slow_keep > 0:
                if len(self._slow_heap) < self.slow_keep:
                    heapq.heappush(self._slow_heap, (duration, next(self._tiebreak), trace_id))
                    self._slow[trace_id] = frozen
                elif duration > self._slow_heap[0][0]:
                    _, _, out = heapq.heapreplace(
                        self._slow_heap, (duration, next(self._tiebreak), trace_id)
                    )
                    self._slow.pop(out, None)
                    self._slow[trace_id] = frozen
            self.added += 1

    def get(self, trace_id: str) -> Optional[dict]:
        with self._lock:
            found = self._ring.get(trace_id)
            if found is None:
                found = self._slow.get(trace_id)
            return found

    def slowest(self, n: int) -> List[dict]:
        """The ``n`` slowest retained traces, worst first."""
        with self._lock:
            pool = {**{t["trace_id"]: t for t in self._ring.values()}, **self._slow}
        ranked = sorted(pool.values(), key=lambda t: float(t.get("duration_ms") or 0.0), reverse=True)
        return ranked[: max(0, int(n))]

    def recent(self, n: int) -> List[dict]:
        """The ``n`` most recently finished traces, newest first."""
        with self._lock:
            items = list(self._ring.values())
        return list(reversed(items))[: max(0, int(n))]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


class Tracer:
    """Mints, samples and files traces for one process.

    ``sample_rate`` in ``[0, 1]`` is the always-on-cheap knob: at 1.0
    (the default -- tests want every trace) each request gets a trace; at
    0.0 :meth:`trace` always answers ``None`` and the hot path performs
    one attribute read and one comparison, allocating nothing.
    """

    def __init__(
        self,
        *,
        sample_rate: float = 1.0,
        capacity: int = DEFAULT_CAPACITY,
        slow_keep: int = DEFAULT_SLOW_KEEP,
        rng: Optional[random.Random] = None,
    ):
        if not (0.0 <= sample_rate <= 1.0):
            raise ValueError("sample_rate must be within [0, 1]")
        self.sample_rate = float(sample_rate)
        self.buffer = TraceBuffer(capacity, slow_keep)
        self._rng = rng if rng is not None else random.Random()
        self.started = 0
        self.sampled_out = 0
        self.finished = 0

    def trace(self, trace_id: Optional[str] = None, name: str = "request") -> Optional[Trace]:
        """A live trace for one request, or ``None`` when sampled out."""
        if self.sample_rate <= 0.0:
            self.sampled_out += 1
            return None
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            self.sampled_out += 1
            return None
        self.started += 1
        return Trace(trace_id, name)

    def finish(self, trace: Optional[Trace], error: Optional[str] = None) -> None:
        """Close ``trace`` and file it; a ``None`` trace is a no-op."""
        if trace is None:
            return
        trace.finish(error)
        self.buffer.add(trace)
        self.finished += 1

    def get(self, trace_id: str) -> Optional[dict]:
        return self.buffer.get(trace_id)

    def slowest(self, n: int) -> List[dict]:
        return self.buffer.slowest(n)

    def recent(self, n: int) -> List[dict]:
        return self.buffer.recent(n)

    def snapshot(self) -> dict:
        """Counters for ``/metrics`` -- plain finite numbers only."""
        return {
            "sample_rate": self.sample_rate,
            "started": self.started,
            "sampled_out": self.sampled_out,
            "finished": self.finished,
            "buffered": len(self.buffer),
            "evicted": self.buffer.evicted,
        }


_tracer = Tracer()
_tracer_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer the serving stack shares."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer (tests inject isolated instances)."""
    global _tracer
    with _tracer_lock:
        _tracer = tracer
    return tracer


def configure(
    *,
    sample_rate: float = 1.0,
    capacity: int = DEFAULT_CAPACITY,
    slow_keep: int = DEFAULT_SLOW_KEEP,
) -> Tracer:
    """Build and install a fresh process-wide tracer; returns it."""
    return set_tracer(Tracer(sample_rate=sample_rate, capacity=capacity, slow_keep=slow_keep))
