"""Prometheus text exposition, by hand: counters, gauges, histograms.

``GET /metrics`` renders the serving stack's numbers in the Prometheus
text format (version 0.0.4) without importing a client library.  The
format is small enough to emit directly -- ``# HELP``/``# TYPE`` header
lines, then one sample per line -- and emitting it ourselves keeps three
invariants the stack cares about:

* **NaN-free by construction.**  Percentile windows answer ``nan``
  before any traffic; :class:`MetricsWriter.sample` silently skips
  non-finite values, so an idle server scrapes clean (the strict-JSON
  twin of the ``/v1/stats`` regression).
* **Counters are monotonic.**  Everything rendered as ``counter`` maps
  to an ever-increasing Python int maintained by the stats objects.
* **Histograms are fixed-bucket and cumulative.**  :class:`Histogram`
  records observations into a constant set of latency buckets (O(log
  buckets) per observe, no allocation), rendered as the standard
  ``_bucket{le=...}`` / ``_sum`` / ``_count`` triplet.

:func:`render_server_metrics` is the one composition point: it walks the
per-model :class:`~repro.serve.metrics.BatcherStats` (duck-typed -- this
module must not import the serving layer), the per-replica rows, the
autoscaler snapshot, the store identity, the gateway limits and the
tracer counters, and returns the full exposition body.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, List, Optional

__all__ = ["Histogram", "MetricsWriter", "render_server_metrics", "DEFAULT_BUCKETS_MS"]

#: Fixed latency buckets (milliseconds): sub-ms engine calls through
#: multi-second stragglers, roughly logarithmic.
DEFAULT_BUCKETS_MS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    ``observe`` is O(log buckets) (a bisect into the constant bound
    tuple) and allocation-free; non-finite observations are dropped so
    the rendered output can never carry NaN.  Buckets are *non*-
    cumulative internally and cumulated at render time.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds=DEFAULT_BUCKETS_MS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a non-empty ascending sequence")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            return
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def cumulative(self) -> List[int]:
        """Per-bucket cumulative counts (last entry equals ``count``)."""
        out, running = [], 0
        for bucket in self.counts:
            running += bucket
            out.append(running)
        return out

    def as_dict(self) -> dict:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "count": self.count, "sum": self.sum}


def _escape_label(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(value)


class MetricsWriter:
    """Accumulates exposition lines; headers are emitted once per metric."""

    def __init__(self):
        self._lines: List[str] = []
        self._described: set = set()

    def header(self, name: str, help_text: str, metric_type: str) -> None:
        if name in self._described:
            return
        self._described.add(name)
        self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {metric_type}")

    def sample(self, name: str, labels: Optional[Dict[str, str]], value) -> None:
        if value is None:
            return
        if isinstance(value, bool):
            value = int(value)
        if not isinstance(value, (int, float)):
            return
        if not math.isfinite(float(value)):
            return  # NaN/Inf never reach the wire
        rendered = ""
        if labels:
            pairs = ",".join(f'{key}="{_escape_label(val)}"' for key, val in labels.items())
            rendered = "{" + pairs + "}"
        self._lines.append(f"{name}{rendered} {_format_value(value)}")

    def counter(self, name: str, help_text: str, value, labels=None) -> None:
        self.header(name, help_text, "counter")
        self.sample(name, labels, value)

    def gauge(self, name: str, help_text: str, value, labels=None) -> None:
        self.header(name, help_text, "gauge")
        self.sample(name, labels, value)

    def histogram(self, name: str, help_text: str, hist: Histogram, labels=None) -> None:
        self.header(name, help_text, "histogram")
        labels = dict(labels or {})
        for bound, cum in zip(list(hist.bounds) + [math.inf], hist.cumulative()):
            self.sample(f"{name}_bucket", {**labels, "le": _format_value(float(bound))}, cum)
        self.sample(f"{name}_sum", labels, hist.sum)
        self.sample(f"{name}_count", labels, hist.count)

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


# ---------------------------------------------------------------------- #
# The serving stack's exposition
# ---------------------------------------------------------------------- #
_COUNTERS = (
    ("submitted", "Requests accepted into the batcher queue."),
    ("completed", "Requests resolved with a result."),
    ("rejected", "Requests refused because the bounded queue was full."),
    ("deadline_missed", "Requests failed on an expired latency deadline."),
    ("shed_retried", "Shed requests handed to the one-shot rescue hook."),
    ("shed_recovered", "Shed requests the rescue hook answered."),
    ("batches", "Fused engine calls."),
)

_REPLICA_COUNTERS = (
    ("dispatched", "Fused batches this replica answered."),
    ("failures", "Calls this replica failed (crash, timeout or error answer)."),
    ("restarts", "Times this replica's worker was restarted."),
)

_AUTOSCALER_COUNTERS = (
    ("scale_ups", "Autoscaler scale-up actions."),
    ("scale_downs", "Autoscaler scale-down actions."),
    ("holds", "Autoscaler hold decisions."),
    ("nan_holds", "Holds forced by a cold percentile window."),
    ("idle_demotions", "Idle models demoted to the registry's LRU front."),
    ("errors", "Autoscaler steps that failed."),
)


def render_server_metrics(
    stats_by_model: Dict[str, object],
    *,
    gateway: Optional[dict] = None,
    tracer: Optional[object] = None,
) -> str:
    """The full ``GET /metrics`` body for one serving process."""
    writer = MetricsWriter()
    for model, stats in sorted(stats_by_model.items()):
        labels = {"model": model}
        for key, help_text in _COUNTERS:
            writer.counter(f"repro_{key}_total", help_text, getattr(stats, key, None), labels)
        writer.gauge("repro_largest_batch", "Largest fused batch so far.",
                     getattr(stats, "largest_batch", None), labels)
        writer.gauge("repro_mean_batch_size", "Mean fused batch size.",
                     getattr(stats, "mean_batch_size", None), labels)
        for attr, name, help_text in (
            ("latency_hist", "repro_request_latency_ms", "End-to-end request latency (ms)."),
            ("queue_wait_hist", "repro_queue_wait_ms", "Submit-to-batch-start wait (ms)."),
            ("compute_hist", "repro_batch_compute_ms", "Fused engine-call duration (ms)."),
        ):
            hist = getattr(stats, attr, None)
            if isinstance(hist, Histogram):
                writer.histogram(name, help_text, hist, labels)
        window = getattr(stats, "latency", None)
        if window is not None and len(window):
            # Quantile gauges only exist once the window has samples --
            # an empty window would be NaN, and NaN never reaches the wire.
            for quantile, value in zip((0.5, 0.95, 0.99), window.quantiles((50, 95, 99))):
                writer.gauge(
                    "repro_request_latency_quantile_ms",
                    "Sliding-window request latency quantiles (ms).",
                    value,
                    {**labels, "quantile": str(quantile)},
                )
        for row in getattr(stats, "replicas", None) or []:
            rlabels = {**labels, "replica": str(row.get("replica"))}
            writer.gauge("repro_replica_alive", "Replica liveness (1 = routable).",
                         row.get("alive"), rlabels)
            writer.gauge("repro_replica_in_flight", "Batches dispatched at this replica.",
                         row.get("in_flight"), rlabels)
            writer.gauge("repro_replica_ewma_latency_ms", "EWMA call latency (ms).",
                         row.get("ewma_latency_ms"), rlabels)
            for key, help_text in _REPLICA_COUNTERS:
                writer.counter(f"repro_replica_{key}_total", help_text, row.get(key), rlabels)
        scaler = getattr(stats, "autoscaler", None)
        if scaler:
            writer.gauge("repro_autoscaler_fleet", "Replica fleet size.", scaler.get("fleet"), labels)
            writer.gauge("repro_autoscaler_alive", "Routable replicas.", scaler.get("alive"), labels)
            for key, help_text in _AUTOSCALER_COUNTERS:
                writer.counter(f"repro_autoscaler_{key}_total", help_text, scaler.get(key), labels)
        store = getattr(stats, "store", None)
        if store:
            writer.gauge(
                "repro_model_store_info",
                "Store identity of the serving version (labels carry the detail).",
                1,
                {
                    **labels,
                    "version": str(store.get("version_tag", store.get("version", "?"))),
                    "content_hash": str(store.get("content_hash", "?"))[:12],
                },
            )
    if gateway:
        for key in ("open_connections", "inflight", "max_connections", "max_inflight"):
            writer.gauge(f"repro_gateway_{key}", f"Gateway {key.replace('_', ' ')}.",
                         gateway.get(key))
        for key in ("total_connections", "total_requests", "connections_rejected", "requests_rejected"):
            writer.counter(f"repro_gateway_{key}_total", f"Gateway {key.replace('_', ' ')}.",
                           gateway.get(key))
    if tracer is not None:
        snap = tracer.snapshot()
        writer.gauge("repro_obs_sample_rate", "Trace sampling rate.", snap.get("sample_rate"))
        writer.gauge("repro_obs_traces_buffered", "Finished traces retained.", snap.get("buffered"))
        for key in ("started", "sampled_out", "finished", "evicted"):
            writer.counter(f"repro_obs_traces_{key}_total", f"Traces {key.replace('_', ' ')}.",
                           snap.get(key))
    return writer.render()
