"""``repro.obs``: tracing, metrics exposition and structured logging.

Zero-dependency observability for the serving stack, threaded through
every layer:

* **Spans + traces** (:mod:`repro.obs.trace`, :mod:`repro.obs.tracer`):
  a trace id is minted at the gateway (``X-Request-Id`` accepted or
  generated, echoed on *every* response including errors), carried
  through ``DynamicBatcher.submit`` -> batch fusion (one shared batch
  span links the fused requests) -> ``ReplicaGroup`` dispatch -> across
  both ``LocalTransport`` and ``SocketTransport`` into the worker
  process, whose compute timing ships back with the reply and is
  stitched into the parent trace.  Finished traces land in a bounded
  ring with slow-request exemplars (``GET /v1/traces/{id}``,
  ``GET /v1/traces?slow=N``).
* **Prometheus exposition** (:mod:`repro.obs.prom`): ``GET /metrics``
  renders batcher counters, latency histograms, per-replica rows,
  autoscaler state, store identity and gateway limits in the text
  format -- NaN-free by construction.
* **Structured logging** (:mod:`repro.obs.log`): JSON-lines events for
  replica restarts, autoscaler decisions, drain timeouts and swaps,
  each carrying the trace id when one is in scope.

Sampling: ``configure(sample_rate=...)`` installs a process-wide
:class:`Tracer`; a sampled-out request sees ``None`` everywhere and the
hot path allocates nothing.  See ``docs/observability.md``.
"""

from repro.obs.log import JsonLogger, get_logger
from repro.obs.prom import Histogram, MetricsWriter, render_server_metrics
from repro.obs.trace import (
    Span,
    Trace,
    current_trace,
    get_dispatch_context,
    new_span_id,
    new_trace_id,
    reset_dispatch_context,
    set_dispatch_context,
    use_trace,
)
from repro.obs.tracer import TraceBuffer, Tracer, configure, get_tracer, set_tracer

__all__ = [
    "Span",
    "Trace",
    "Tracer",
    "TraceBuffer",
    "Histogram",
    "MetricsWriter",
    "JsonLogger",
    "new_trace_id",
    "new_span_id",
    "current_trace",
    "use_trace",
    "get_dispatch_context",
    "set_dispatch_context",
    "reset_dispatch_context",
    "get_tracer",
    "set_tracer",
    "configure",
    "get_logger",
    "render_server_metrics",
]
