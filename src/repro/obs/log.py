"""Structured JSON-lines logging, trace-aware.

Operational events in the serving stack -- replica restarts and their
backoff, autoscaler decisions, drain-deadline overruns, version swaps --
were plain ``logging`` format strings: greppable by a human, useless to
a pipeline, and impossible to correlate with the request that suffered.
:class:`JsonLogger` replaces that with one JSON object per line, routed
through the stdlib :mod:`logging` tree (handlers, levels and ``caplog``
keep working), and stamps the current trace id automatically whenever an
event fires inside a traced request's context.

Events also land in a small in-memory ring (``records()``) so tests can
assert on structured fields without installing handlers.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from repro.obs.trace import current_trace

__all__ = ["JsonLogger", "get_logger"]

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class JsonLogger:
    """One JSON object per event, through stdlib logging.

    Every record carries ``event`` (a stable machine-readable name),
    ``level``, a wall-clock ``ts``, the caller's keyword fields, and --
    when the event fires inside a traced request -- the ``trace_id``
    linking it to the request's spans.  Values that do not serialize are
    stringified rather than raised on: a log line must never take down
    the path it narrates.
    """

    def __init__(self, name: str = "repro.obs", *, keep: int = 256, clock=time.time):
        self.name = name
        self._logger = logging.getLogger(name)
        self._ring: deque = deque(maxlen=int(keep))
        self._lock = threading.Lock()
        self._clock = clock

    def log(
        self,
        event: str,
        *,
        level: str = "info",
        trace_id: Optional[str] = None,
        **fields,
    ) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "ts": self._clock(),
            "level": level,
            "event": str(event),
        }
        if trace_id is None:
            trace = current_trace()
            if trace is not None:
                trace_id = trace.trace_id
        if trace_id is not None:
            record["trace_id"] = trace_id
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), sort_keys=False, default=str)
        with self._lock:
            self._ring.append(record)
        self._logger.log(_LEVELS.get(level, logging.INFO), "%s", line)
        return record

    def debug(self, event: str, **fields) -> Dict[str, Any]:
        return self.log(event, level="debug", **fields)

    def info(self, event: str, **fields) -> Dict[str, Any]:
        return self.log(event, level="info", **fields)

    def warning(self, event: str, **fields) -> Dict[str, Any]:
        return self.log(event, level="warning", **fields)

    def error(self, event: str, **fields) -> Dict[str, Any]:
        return self.log(event, level="error", **fields)

    def records(self, event: Optional[str] = None) -> List[Dict[str, Any]]:
        """Recent records (optionally filtered by event name), oldest first."""
        with self._lock:
            records = list(self._ring)
        if event is not None:
            records = [record for record in records if record.get("event") == event]
        return records

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()


_logger = JsonLogger()


def get_logger() -> JsonLogger:
    """The process-wide structured logger the serving stack shares."""
    return _logger
