"""Helpers for building and analysing complex scalar wavefields."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.autograd import Tensor

FieldLike = Union[Tensor, np.ndarray]


def _as_tensor(field: FieldLike) -> Tensor:
    return field if isinstance(field, Tensor) else Tensor(field)


def intensity(field: FieldLike) -> Tensor:
    """Light intensity ``|E|^2`` of a complex field (what a detector measures)."""
    return _as_tensor(field).abs2()


def total_power(field: FieldLike) -> Tensor:
    """Total optical power collected over the plane (sum of intensity)."""
    return intensity(field).sum()


def field_from_intensity(image: FieldLike, phase: float = 0.0) -> Tensor:
    """Encode an intensity image onto a coherent wave (Section 3.1).

    The paper encodes the input information on the *amplitude* of the laser
    with an initially flat phase: ``E = sqrt(I) * exp(j * phase)`` with
    ``phase = 0`` by default.  Negative intensities are clipped at zero.
    """
    image_t = _as_tensor(image)
    amplitude = image_t.clip(0.0, None) ** 0.5
    if phase == 0.0:
        return amplitude.to_complex()
    return amplitude.to_complex() * complex(np.cos(phase), np.sin(phase))


def normalize_field(field: FieldLike, power: float = 1.0) -> Tensor:
    """Rescale a field so its total power equals ``power``."""
    field_t = _as_tensor(field)
    current = float(total_power(field_t).data.real)
    if current <= 0:
        return field_t
    scale = float(np.sqrt(power / current))
    return field_t * scale


def phase_of(field: FieldLike) -> Tensor:
    """Phase angle of the field in radians."""
    return _as_tensor(field).angle()


def correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Normalised cross-correlation between two real patterns in [-1, 1].

    Used to quantify simulation-to-hardware agreement (Figure 6).
    """
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    a = a - a.mean()
    b = b - b.mean()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 0.0
    return float(np.dot(a, b) / denom)
