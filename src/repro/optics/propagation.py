"""FFT-based scalar-diffraction propagators (Section 3.1.1, Eq. 1-7).

Free-space propagation over a distance ``z`` is a linear, shift-invariant
operation, so it is evaluated in the spatial-frequency domain::

    U_out = iFFT2( FFT2(U_in) * H(fx, fy; z) )

where ``H`` is the transfer function of the chosen approximation.  The
three approximations offered by the paper are implemented:

* **Rayleigh-Sommerfeld** (angular-spectrum form) -- valid in near and far
  field, the most accurate and the default.
* **Fresnel** -- parabolic-wavefront approximation, valid in the near
  field (Eq. 3).
* **Fraunhofer** -- far-field approximation, a single Fourier transform
  with a quadratic phase prefactor (Eq. 4).

A :class:`DirectIntegrationPropagator` evaluates Eq. 5 by explicit
convolution with the sampled impulse response; it is slower but serves as
an independent reference for validating the transfer-function kernels.
All propagators are differentiable because they are built from
:func:`repro.autograd.ops.fft2` / ``ifft2`` and element-wise products.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

import numpy as np

from repro.autograd import Tensor, ops
from repro.optics.grid import SpatialGrid


def fresnel_number(aperture_radius: float, wavelength: float, distance: float) -> float:
    """Fresnel number ``N_F = a^2 / (lambda z)`` used to pick approximations."""
    if distance <= 0:
        raise ValueError("distance must be positive")
    return aperture_radius**2 / (wavelength * distance)


class Propagator:
    """Base class: precomputes a transfer function and applies it to fields.

    Parameters
    ----------
    grid:
        Sampling grid of the planes (input and output share the grid).
    wavelength:
        Laser wavelength in metres.
    distance:
        Propagation distance ``z`` in metres.
    pad_factor:
        Integer >= 1.  With ``pad_factor=2`` fields are zero padded to twice
        the size before the FFT to suppress wrap-around of the circular
        convolution, then cropped back.  ``1`` (no padding) matches the
        runtime-optimised kernels used for training sweeps.
    """

    name = "base"

    def __init__(self, grid: SpatialGrid, wavelength: float, distance: float, pad_factor: int = 1):
        if wavelength <= 0:
            raise ValueError("wavelength must be positive")
        if distance <= 0:
            raise ValueError("distance must be positive")
        if pad_factor < 1:
            raise ValueError("pad_factor must be >= 1")
        self.grid = grid
        self.wavelength = float(wavelength)
        self.distance = float(distance)
        self.pad_factor = int(pad_factor)
        self._work_grid = grid if pad_factor == 1 else grid.padded(pad_factor)
        self.transfer_function = self._build_transfer_function(self._work_grid)
        # Wrap once: re-wrapping the (constant) transfer function into a new
        # Tensor on every call added per-batch overhead in the training loop.
        self._transfer_tensor = Tensor(self.transfer_function)

    # -- to be provided by subclasses ------------------------------------- #
    def _build_transfer_function(self, grid: SpatialGrid) -> np.ndarray:
        raise NotImplementedError

    # -- pickling ----------------------------------------------------------- #
    # The transfer function (and the Fraunhofer prefactor) are pure
    # functions of grid/wavelength/distance, so they are dropped from the
    # pickle and rebuilt on load.  This keeps SessionSpec blobs -- which
    # ship a pickled model (with one propagator per layer) to every
    # cluster replica -- proportional to the *trained parameters*, not to
    # cached complex kernels.  The rebuild is bit-exact: the kernels are
    # deterministic numpy expressions of the pickled scalars.
    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("transfer_function", None)
        state.pop("_transfer_tensor", None)
        state.pop("_cached_prefactor", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.transfer_function = self._build_transfer_function(self._work_grid)
        self._transfer_tensor = Tensor(self.transfer_function)

    # -- public API -------------------------------------------------------- #
    @property
    def wavenumber(self) -> float:
        return 2.0 * np.pi / self.wavelength

    def __call__(self, field: Tensor) -> Tensor:
        """Propagate a complex field of shape ``(..., N, N)`` by ``distance``."""
        field = field if isinstance(field, Tensor) else Tensor(field)
        if field.shape[-2:] != self.grid.shape:
            raise ValueError(f"field shape {field.shape[-2:]} does not match grid {self.grid.shape}")
        pad = (self._work_grid.size - self.grid.size) // 2
        if pad:
            field = ops.pad2d(field, pad)
        spectrum = ops.fft2(field)
        propagated = spectrum * self._transfer_tensor
        out = ops.ifft2(propagated)
        if pad:
            out = ops.crop2d(out, pad)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(size={self.grid.size}, pixel={self.grid.pixel_size:.2e} m, "
            f"lambda={self.wavelength:.2e} m, z={self.distance:.3e} m)"
        )


class RayleighSommerfeldPropagator(Propagator):
    """Angular-spectrum (exact scalar) transfer function.

    ``H = exp(j k z sqrt(1 - (lambda fx)^2 - (lambda fy)^2))`` for
    propagating components; evanescent components decay exponentially.
    This is the tensor implementation of Eq. 1 used as LightRidge's default
    IR because it is accurate in both near and far field.
    """

    name = "rayleigh_sommerfeld"

    def _build_transfer_function(self, grid: SpatialGrid) -> np.ndarray:
        fx, fy = grid.frequencies
        argument = 1.0 - (self.wavelength * fx) ** 2 - (self.wavelength * fy) ** 2
        # Complex square root: evanescent waves (argument < 0) decay.
        kz = self.wavenumber * np.sqrt(argument.astype(complex))
        return np.exp(1j * kz * self.distance)


class FresnelPropagator(Propagator):
    """Fresnel (paraxial) transfer function, Eq. 3.

    ``H = exp(j k z) exp(-j pi lambda z (fx^2 + fy^2))``; valid when the
    observation plane is in the near field and diffraction angles are
    small.
    """

    name = "fresnel"

    def _build_transfer_function(self, grid: SpatialGrid) -> np.ndarray:
        fx, fy = grid.frequencies
        quadratic = np.exp(-1j * np.pi * self.wavelength * self.distance * (fx**2 + fy**2))
        return np.exp(1j * self.wavenumber * self.distance) * quadratic

    def validity_condition(self, aperture_radius: Optional[float] = None) -> bool:
        """Check the paper's Fresnel validity bound ``z^3 >> pi/(4 lambda) r^4``."""
        radius = aperture_radius if aperture_radius is not None else self.grid.extent / 2.0
        return self.distance**3 > (np.pi / (4.0 * self.wavelength)) * radius**4 / 100.0


class FraunhoferPropagator(Propagator):
    """Fraunhofer (far-field) approximation, Eq. 4.

    The output field is proportional to the Fourier transform of the input
    aperture with a quadratic phase prefactor.  The output plane is sampled
    at ``lambda z / (N dx)``; :attr:`output_pixel_size` exposes that pitch.
    For DONN stacks the pattern (not the absolute scale) is what feeds the
    next layer, so the field is returned on the same array shape.
    """

    name = "fraunhofer"

    def _build_transfer_function(self, grid: SpatialGrid) -> np.ndarray:
        # Not used: Fraunhofer is a single transform, not a convolution.
        return np.ones(grid.shape, dtype=complex)

    @property
    def output_pixel_size(self) -> float:
        return self.wavelength * self.distance / (self.grid.size * self.grid.pixel_size)

    def validity_condition(self) -> bool:
        """Far-field condition ``z >> k (xi^2 + eta^2)_max / 2``."""
        max_radius_sq = 2.0 * (self.grid.extent / 2.0) ** 2
        return self.distance > self.wavenumber * max_radius_sq / 2.0

    def _prefactor_tensor(self) -> Tensor:
        cached = getattr(self, "_cached_prefactor", None)
        if cached is None:
            x, y = self.grid.coordinates
            prefactor = (
                np.exp(1j * self.wavenumber * self.distance)
                * np.exp(1j * self.wavenumber / (2.0 * self.distance) * (x**2 + y**2))
                / (1j * self.wavelength * self.distance)
            )
            cached = Tensor(prefactor * self.grid.pixel_size**2)
            self._cached_prefactor = cached
        return cached

    def __call__(self, field: Tensor) -> Tensor:
        field = field if isinstance(field, Tensor) else Tensor(field)
        if field.shape[-2:] != self.grid.shape:
            raise ValueError(f"field shape {field.shape[-2:]} does not match grid {self.grid.shape}")
        spectrum = ops.fftshift(ops.fft2(ops.ifftshift(field)))
        return spectrum * self._prefactor_tensor()


class DirectIntegrationPropagator(Propagator):
    """Rayleigh-Sommerfeld propagation via the sampled impulse response.

    Implements Eq. 1 literally: the free-space impulse response
    ``h(x, y) = z / (j lambda) * exp(j k r) / r^2`` with
    ``r = sqrt(z^2 + x^2 + y^2)`` is sampled on the (doubled) grid and the
    convolution of Eq. 5 is carried out.  Used as the physics reference
    that the transfer-function kernels are validated against, and as the
    computational model of the LightPipes-style baseline.
    """

    name = "direct"

    def _build_transfer_function(self, grid: SpatialGrid) -> np.ndarray:
        x, y = grid.coordinates
        r = np.sqrt(self.distance**2 + x**2 + y**2)
        impulse = (self.distance / (1j * self.wavelength)) * np.exp(1j * self.wavenumber * r) / r**2
        impulse = impulse * grid.pixel_size**2  # discretise the integral
        # Convolution theorem: transfer function is the FFT of the impulse
        # response (centred at the origin -> ifftshift first).
        return np.fft.fft2(np.fft.ifftshift(impulse))


APPROXIMATIONS: Dict[str, Type[Propagator]] = {
    "rayleigh_sommerfeld": RayleighSommerfeldPropagator,
    "rs": RayleighSommerfeldPropagator,
    "fresnel": FresnelPropagator,
    "fraunhofer": FraunhoferPropagator,
    "direct": DirectIntegrationPropagator,
}


def make_propagator(
    approx: str,
    grid: SpatialGrid,
    wavelength: float,
    distance: float,
    pad_factor: int = 1,
) -> Propagator:
    """Factory used by the layer modules (``approx=`` keyword of the DSL)."""
    key = approx.lower()
    if key not in APPROXIMATIONS:
        raise ValueError(f"unknown diffraction approximation {approx!r}; choose from {sorted(set(APPROXIMATIONS))}")
    return APPROXIMATIONS[key](grid=grid, wavelength=wavelength, distance=distance, pad_factor=pad_factor)
