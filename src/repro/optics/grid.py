"""Spatial sampling grids.

A :class:`SpatialGrid` captures the two architectural parameters that the
paper's DSE engine explores (Section 4): the number of diffraction units
per side (``size``, the "system size / resolution") and the physical pitch
of each unit (``pixel_size``, the "diffraction unit size").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class SpatialGrid:
    """A square, uniformly sampled plane transverse to the optical axis.

    Parameters
    ----------
    size:
        Number of samples per side (e.g. 200 for the paper's 200x200 SLM
        plane).
    pixel_size:
        Physical pitch of one sample in metres (e.g. 36e-6 for the
        prototype's 36 um SLM pixels).
    """

    size: int
    pixel_size: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"grid size must be positive, got {self.size}")
        if self.pixel_size <= 0:
            raise ValueError(f"pixel size must be positive, got {self.pixel_size}")

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.size, self.size)

    @property
    def extent(self) -> float:
        """Physical side length of the plane in metres."""
        return self.size * self.pixel_size

    @cached_property
    def coordinates(self) -> Tuple[np.ndarray, np.ndarray]:
        """Centred spatial coordinates ``(x, y)`` as 2-D arrays in metres."""
        axis = (np.arange(self.size) - self.size / 2.0 + 0.5) * self.pixel_size
        x, y = np.meshgrid(axis, axis, indexing="xy")
        return x, y

    @cached_property
    def frequencies(self) -> Tuple[np.ndarray, np.ndarray]:
        """Spatial-frequency coordinates ``(fx, fy)`` as 2-D arrays in 1/m.

        Laid out in FFT order (no shift) so they can multiply FFT spectra
        directly.
        """
        freq = np.fft.fftfreq(self.size, d=self.pixel_size)
        fx, fy = np.meshgrid(freq, freq, indexing="xy")
        return fx, fy

    def padded(self, factor: int = 2) -> "SpatialGrid":
        """Return a grid enlarged ``factor`` times (same pitch), for
        padding-based suppression of FFT wrap-around."""
        if factor < 1:
            raise ValueError("padding factor must be >= 1")
        return SpatialGrid(size=self.size * factor, pixel_size=self.pixel_size)

    def resize(self, size: int) -> "SpatialGrid":
        """Return a grid with a different number of samples, same pitch."""
        return SpatialGrid(size=size, pixel_size=self.pixel_size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpatialGrid(size={self.size}, pixel_size={self.pixel_size:.3e} m, extent={self.extent:.3e} m)"
