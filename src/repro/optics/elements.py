"""Passive free-space optical elements.

The advanced architectures of Section 5.6 add beam splitters and mirrors
around the diffractive stack (multi-channel RGB classification, optical
skip connections).  These elements are loss-less linear maps on the
complex field, so they are trivially differentiable.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.autograd import Tensor
from repro.optics.grid import SpatialGrid


def circular_aperture(grid: SpatialGrid, radius_fraction: float = 0.5) -> np.ndarray:
    """Binary circular aperture mask with radius ``radius_fraction * extent/2``."""
    if not 0 < radius_fraction <= 1.0:
        raise ValueError("radius_fraction must be in (0, 1]")
    x, y = grid.coordinates
    radius = radius_fraction * grid.extent / 2.0
    return (x**2 + y**2 <= radius**2).astype(float)


def rectangular_aperture(grid: SpatialGrid, width_fraction: float = 0.5, height_fraction: float = 0.5) -> np.ndarray:
    """Binary rectangular aperture mask centred on the axis."""
    x, y = grid.coordinates
    half_w = width_fraction * grid.extent / 2.0
    half_h = height_fraction * grid.extent / 2.0
    return ((np.abs(x) <= half_w) & (np.abs(y) <= half_h)).astype(float)


def thin_lens_phase(grid: SpatialGrid, wavelength: float, focal_length: float) -> np.ndarray:
    """Phase profile of an ideal thin lens, ``-k (x^2+y^2) / (2 f)``."""
    if focal_length == 0:
        raise ValueError("focal length must be non-zero")
    x, y = grid.coordinates
    k = 2.0 * np.pi / wavelength
    return -k * (x**2 + y**2) / (2.0 * focal_length)


class BeamSplitter:
    """An ideal loss-less beam splitter.

    ``split`` divides an incoming field into two output arms;
    ``combine`` merges two arms onto one axis.  Power is conserved:
    each arm carries half the power (amplitude scaled by ``1/sqrt(2)``).
    """

    _SCALE = 1.0 / np.sqrt(2.0)

    def split(self, field: Tensor) -> Tuple[Tensor, Tensor]:
        transmitted = field * self._SCALE
        reflected = field * complex(0.0, self._SCALE)  # reflection adds a 90 degree phase
        return transmitted, reflected

    def combine(self, field_a: Tensor, field_b: Tensor) -> Tensor:
        return field_a * self._SCALE + field_b * complex(0.0, self._SCALE)


class Mirror:
    """An ideal flat mirror: flips the transverse coordinate and adds pi phase."""

    def __call__(self, field: Tensor) -> Tensor:
        flipped = field[..., ::-1]
        return flipped * (-1.0)
