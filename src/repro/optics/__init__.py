"""Low-level optical physics modeling (LightRidge Table 2, "Low-level modeling").

Contents
--------
* :mod:`~repro.optics.grid` -- spatial sampling grids shared by sources,
  propagators and detectors.
* :mod:`~repro.optics.laser` -- coherent laser sources with configurable
  wavelength and beam profile (plane, Gaussian, Bessel).
* :mod:`~repro.optics.propagation` -- FFT-based scalar-diffraction
  propagators: Rayleigh-Sommerfeld (angular spectrum), Fresnel and
  Fraunhofer approximations, plus a direct-integration reference.
* :mod:`~repro.optics.elements` -- passive free-space elements (apertures,
  thin lenses, beam splitters, mirrors) used by the advanced
  architectures of Section 5.6.
* :mod:`~repro.optics.wave` -- helpers for building and analysing complex
  scalar wavefields.
"""

from repro.optics.grid import SpatialGrid
from repro.optics.laser import LaserSource, plane_profile, gaussian_profile, bessel_profile
from repro.optics.propagation import (
    Propagator,
    RayleighSommerfeldPropagator,
    FresnelPropagator,
    FraunhoferPropagator,
    DirectIntegrationPropagator,
    make_propagator,
    fresnel_number,
    APPROXIMATIONS,
)
from repro.optics.elements import (
    circular_aperture,
    rectangular_aperture,
    thin_lens_phase,
    BeamSplitter,
    Mirror,
)
from repro.optics.wave import intensity, normalize_field, field_from_intensity, total_power

__all__ = [
    "SpatialGrid",
    "LaserSource",
    "plane_profile",
    "gaussian_profile",
    "bessel_profile",
    "Propagator",
    "RayleighSommerfeldPropagator",
    "FresnelPropagator",
    "FraunhoferPropagator",
    "DirectIntegrationPropagator",
    "make_propagator",
    "fresnel_number",
    "APPROXIMATIONS",
    "circular_aperture",
    "rectangular_aperture",
    "thin_lens_phase",
    "BeamSplitter",
    "Mirror",
    "intensity",
    "normalize_field",
    "field_from_intensity",
    "total_power",
]
