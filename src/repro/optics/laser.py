"""Coherent laser sources and beam profiles (``lr.laser`` in the paper).

A :class:`LaserSource` carries the wavelength (the third DSE axis of
Section 4) and a beam profile that shapes the illumination amplitude over
the input plane.  Profiles are plain functions of a grid so new ones can
be added without touching the class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.autograd import Tensor
from repro.optics.grid import SpatialGrid

ProfileFn = Callable[[SpatialGrid], np.ndarray]

# Named wavelengths used throughout the paper (metres).
VISIBLE_GREEN_532NM = 532e-9
VISIBLE_BLUE_432NM = 432e-9
VISIBLE_RED_632NM = 632e-9
TERAHERTZ_400UM = 400e-6


def plane_profile(grid: SpatialGrid) -> np.ndarray:
    """Uniform (collimated) illumination over the whole plane."""
    return np.ones(grid.shape, dtype=float)


def gaussian_profile(grid: SpatialGrid, waist_fraction: float = 0.5) -> np.ndarray:
    """Gaussian beam amplitude with a waist of ``waist_fraction * extent``."""
    x, y = grid.coordinates
    waist = waist_fraction * grid.extent
    return np.exp(-(x**2 + y**2) / waist**2)


def bessel_profile(grid: SpatialGrid, radial_frequency_fraction: float = 4.0) -> np.ndarray:
    """Zeroth-order Bessel beam amplitude |J0(k_r r)| (non-diffracting core)."""
    try:  # scipy is optional; only Bessel beams need it
        from scipy import special
    except ImportError as error:  # pragma: no cover - scipy-free installs
        raise ImportError("bessel_profile requires scipy (install the `fast` extra)") from error
    x, y = grid.coordinates
    radius = np.sqrt(x**2 + y**2)
    k_radial = 2.0 * np.pi * radial_frequency_fraction / grid.extent
    return np.abs(special.j0(k_radial * radius))


PROFILES: Dict[str, ProfileFn] = {
    "plane": plane_profile,
    "gaussian": gaussian_profile,
    "bessel": bessel_profile,
}


@dataclass
class LaserSource:
    """A continuous-wave coherent source illuminating the input plane.

    Parameters
    ----------
    wavelength:
        Laser wavelength in metres (e.g. ``532e-9`` for the prototype).
    power:
        Total optical power in watts; used by the energy model (Table 4).
    profile:
        Beam profile name in :data:`PROFILES` or a callable grid -> array.
    """

    wavelength: float = VISIBLE_GREEN_532NM
    power: float = 5e-3
    profile: str | ProfileFn = "plane"

    def __post_init__(self) -> None:
        if self.wavelength <= 0:
            raise ValueError("wavelength must be positive")
        if self.power <= 0:
            raise ValueError("power must be positive")
        if isinstance(self.profile, str) and self.profile not in PROFILES:
            raise ValueError(f"unknown beam profile {self.profile!r}; choose from {sorted(PROFILES)}")

    @property
    def wavenumber(self) -> float:
        """Wave number ``k = 2 pi / lambda``."""
        return 2.0 * np.pi / self.wavelength

    def profile_amplitude(self, grid: SpatialGrid) -> np.ndarray:
        """Beam amplitude over the grid, normalised to the source power."""
        fn = PROFILES[self.profile] if isinstance(self.profile, str) else self.profile
        amplitude = np.asarray(fn(grid), dtype=float)
        norm = np.sqrt((amplitude**2).sum())
        if norm == 0:
            raise ValueError("beam profile has zero power over the grid")
        return amplitude * np.sqrt(self.power) / norm

    def illuminate(self, grid: SpatialGrid, image: Optional[Tensor] = None) -> Tensor:
        """Return the complex field leaving the encoding plane.

        If ``image`` is given (a real non-negative intensity pattern), it is
        encoded on the beam amplitude as ``sqrt(I)``, matching the paper's
        amplitude encoding; otherwise the bare beam profile is returned.
        """
        amplitude = Tensor(self.profile_amplitude(grid))
        if image is None:
            return amplitude.to_complex()
        image_t = image if isinstance(image, Tensor) else Tensor(image)
        encoded = amplitude * (image_t.clip(0.0, None) ** 0.5)
        return encoded.to_complex()
