"""Model (de)serialisation built on numpy archives."""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.autograd import Module


def save_model(model: Module, path: Union[str, Path]) -> Path:
    """Save all parameters of a module to a ``.npz`` archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = model.state_dict()
    np.savez(path, **state)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_model_into(model: Module, path: Union[str, Path]) -> Module:
    """Load parameters saved by :func:`save_model` into an existing module."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
    return model
