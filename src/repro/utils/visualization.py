"""Terminal-friendly visualisation helpers.

There is no display in the reproduction environment, so phase patterns and
detector read-outs are rendered as ASCII heat maps and formatted tables --
the equivalent of ``lr.layers.view()`` for a headless box.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

import numpy as np

_SHADES = " .:-=+*#%@"


def ascii_heatmap(values: np.ndarray, width: int = 48, height: int = 24) -> str:
    """Render a 2-D array as an ASCII heat map string."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError("ascii_heatmap expects a 2-D array")
    rows = np.linspace(0, values.shape[0] - 1, min(height, values.shape[0])).astype(int)
    cols = np.linspace(0, values.shape[1] - 1, min(width, values.shape[1])).astype(int)
    sampled = values[np.ix_(rows, cols)]
    low, high = sampled.min(), sampled.max()
    if high - low < 1e-12:
        normalised = np.zeros_like(sampled)
    else:
        normalised = (sampled - low) / (high - low)
    indices = (normalised * (len(_SHADES) - 1)).astype(int)
    return "\n".join("".join(_SHADES[i] for i in row) for row in indices)


def pattern_summary(pattern: np.ndarray) -> Dict[str, float]:
    """Summary statistics of an intensity pattern (peak, total, contrast)."""
    pattern = np.asarray(pattern, dtype=float)
    total = float(pattern.sum())
    peak = float(pattern.max()) if pattern.size else 0.0
    mean = float(pattern.mean()) if pattern.size else 0.0
    contrast = peak / mean if mean > 0 else 0.0
    return {"total": total, "peak": peak, "mean": mean, "contrast": contrast}


def format_table(rows: Sequence[Dict[str, Union[str, float, int]]], float_format: str = "{:.3f}") -> str:
    """Format a list of dictionaries as an aligned text table.

    Used by the benchmark harness to print the paper's tables.
    """
    if not rows:
        return "(empty table)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def render(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return "" if value is None else str(value)

    rendered = [[render(row.get(column)) for column in columns] for row in rows]
    widths = [max(len(column), *(len(line[i]) for line in rendered)) for i, column in enumerate(columns)]
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    body = "\n".join(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)) for line in rendered)
    return f"{header}\n{separator}\n{body}"
