"""Shared utilities: visualisation and (de)serialisation."""

from repro.utils.visualization import ascii_heatmap, pattern_summary, format_table
from repro.utils.serialization import save_model, load_model_into

__all__ = ["ascii_heatmap", "pattern_summary", "format_table", "save_model", "load_model_into"]
