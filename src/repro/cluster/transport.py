"""Worker transports: how the parent talks to one replica worker.

The PR 5 cluster spoke exactly one dialect: a ``multiprocessing`` pipe
for control messages plus shared-memory arenas for array payloads, to a
child process spawned on the same host.  That dialect is now one
implementation of a small :class:`Transport` interface, so the *same*
message schema can also travel over a TCP socket to a worker running on
another host (or just another container).

Message schema (transport-independent; array payloads appear in-band):

==============================  =========================================
parent -> worker                worker -> parent
==============================  =========================================
``("run", batch, seq[, ctx])``  ``("ok", seq, result, compute_s[, obs])``
                                or ``("err", seq, message)``
``("ping", seq)``               ``("pong", seq)``
``("stop",)``                   (conversation over)
==============================  =========================================

The optional trailing elements carry observability: ``ctx`` is the
parent's trace context (``{"trace_ids": [...]}``) and ``obs`` the
worker's reply timing (pid, compute duration) that the serving layer
stitches into the request traces.  Both sides tolerate the short forms,
so mixed-version parents and workers interoperate.

plus a one-shot startup handshake -- ``("ready", meta)`` on success,
``("fatal", message)`` on a worker that could not build its session --
surfaced through :meth:`Transport.start`'s return value or
:class:`~repro.cluster.errors.WorkerStartupError`.

* :class:`LocalTransport` spawns the worker as a child process; control
  messages cross a pipe and arrays move through shared-memory arenas
  (:mod:`repro.cluster.shm`) as tiny descriptors -- the PR 5 path,
  behavior-for-behavior.
* :class:`SocketTransport` connects to an already-running
  ``repro-worker`` process (:mod:`repro.cluster.remote`), frames every
  message as ``8-byte big-endian length + payload`` over TCP, and ships
  arrays in-band.  The payload encoding is pickle: the cluster protocol
  is for *trusted* workers you launched yourself -- exactly like the
  spawn path, whose child also unpickles whatever the parent sends.
  Never point it at an untrusted endpoint.

:class:`~repro.cluster.replica.Replica` drives either transport through
the same five calls (``start`` / ``send`` / ``poll`` / ``recv`` /
``close``), so routing, retry, health checks and telemetry in
:class:`~repro.cluster.ReplicaGroup` are transport-agnostic.
"""

from __future__ import annotations

import multiprocessing
import pickle
import select
import socket
import struct
import time
from abc import ABC, abstractmethod
from typing import Optional, Tuple

from repro.cluster.errors import WorkerStartupError
from repro.cluster.shm import ShmArena, ShmReader

__all__ = [
    "Transport",
    "LocalTransport",
    "SocketTransport",
    "FrameBuffer",
    "encode_frame",
    "decode_frame",
    "recv_message",
    "send_message",
    "parse_address",
]

#: Length prefix of one frame: 8-byte big-endian unsigned payload size.
_FRAME_HEADER = struct.Struct(">Q")
#: Sanity bound on a single frame (a batch of float64 images at sys 512
#: and B=1024 is ~2 GiB; anything past this is a protocol desync).
MAX_FRAME_BYTES = 1 << 33
#: Socket read chunk size.
_CHUNK = 1 << 20


# ---------------------------------------------------------------------- #
# Frame codec (shared by SocketTransport and the repro-worker server)
# ---------------------------------------------------------------------- #
def encode_frame(message: tuple) -> bytes:
    """One wire frame: length prefix + pickled message tuple."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return _FRAME_HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> tuple:
    return pickle.loads(payload)


class FrameBuffer:
    """Incremental decoder: feed raw socket bytes, pop complete messages."""

    def __init__(self) -> None:
        self._data = bytearray()

    def feed(self, chunk: bytes) -> None:
        self._data.extend(chunk)

    def next_message(self) -> Optional[tuple]:
        """The next complete message, or ``None`` when more bytes are needed."""
        header = _FRAME_HEADER.size
        if len(self._data) < header:
            return None
        (length,) = _FRAME_HEADER.unpack(bytes(self._data[:header]))
        if length > MAX_FRAME_BYTES:
            raise ConnectionError(f"frame of {length} bytes exceeds the protocol bound")
        if len(self._data) < header + length:
            return None
        payload = bytes(self._data[header : header + length])
        del self._data[: header + length]
        return decode_frame(payload)

    @property
    def pending(self) -> bool:
        """True when a complete frame is already buffered."""
        header = _FRAME_HEADER.size
        if len(self._data) < header:
            return False
        (length,) = _FRAME_HEADER.unpack(bytes(self._data[:header]))
        return len(self._data) >= header + length


def send_message(sock: socket.socket, message: tuple) -> None:
    sock.sendall(encode_frame(message))


def recv_message(
    sock: socket.socket, buffer: FrameBuffer, deadline: Optional[float] = None
) -> tuple:
    """Blocking receive of one message; raises ``EOFError`` on a closed peer.

    ``deadline`` is a ``time.monotonic`` instant; ``TimeoutError`` past it.
    """
    while True:
        message = buffer.next_message()
        if message is not None:
            return message
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutError("no complete frame before the deadline")
        chunk = sock.recv(_CHUNK)
        if not chunk:
            raise EOFError("peer closed the connection")
        buffer.feed(chunk)


def parse_address(address) -> Tuple[str, int]:
    """``"host:port"`` (or a ``(host, port)`` pair) -> ``(host, port)``."""
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return str(address[0]), int(address[1])
    if isinstance(address, str) and ":" in address:
        host, _, port = address.rpartition(":")
        return host, int(port)
    raise ValueError(f"worker address must be 'host:port' or (host, port), got {address!r}")


# ---------------------------------------------------------------------- #
# The interface
# ---------------------------------------------------------------------- #
class Transport(ABC):
    """One worker conversation: lifecycle + framed messages with arrays.

    Implementations are driven by exactly one
    :class:`~repro.cluster.replica.Replica` (which serializes access
    under its own lock), so they need no internal locking.  Breakage is
    reported through the ``OSError`` family (``BrokenPipeError`` /
    ``EOFError`` / ``ConnectionError``) from :meth:`send`/:meth:`recv`,
    or by :attr:`alive` turning false between calls.
    """

    name = "?"

    @abstractmethod
    def start(self) -> dict:
        """Bring the worker up (spawn or connect) and return its handshake meta.

        Called again after :meth:`close` to restart/reconnect.  Raises
        :class:`~repro.cluster.errors.WorkerStartupError` when the worker
        cannot serve.
        """

    @abstractmethod
    def send(self, message: tuple) -> None:
        """Ship one parent->worker message (``run`` carries the batch array)."""

    @abstractmethod
    def poll(self, timeout_s: float) -> bool:
        """True when a complete worker->parent message is ready to receive."""

    @abstractmethod
    def recv(self) -> tuple:
        """The next worker->parent message, array payloads materialized."""

    @property
    @abstractmethod
    def alive(self) -> bool:
        """Whether the conversation can still make progress."""

    @abstractmethod
    def close(self, graceful: bool = True) -> None:
        """Tear the conversation down (``graceful`` sends ``stop`` first)."""

    @property
    def pid(self) -> Optional[int]:
        """Worker process id, when this transport owns the process."""
        return None

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return self.name


# ---------------------------------------------------------------------- #
# Local: spawned child process, pipe + shared memory (the PR 5 path)
# ---------------------------------------------------------------------- #
class LocalTransport(Transport):
    """Spawn the worker as a child process on this host.

    Control messages cross a ``multiprocessing.Pipe``; batch arrays move
    through shared-memory arenas and only their descriptors are piped
    (:mod:`repro.cluster.shm`).  ``options`` travel to
    :func:`~repro.cluster.worker.worker_main` (``handicap_s`` etc.).
    """

    name = "local"

    def __init__(
        self,
        spec,
        index: int = 0,
        *,
        options: Optional[dict] = None,
        start_timeout_s: float = 120.0,
        start_method: str = "spawn",
    ):
        self.spec = spec
        self.index = int(index)
        self.options = dict(options or {})
        self.start_timeout_s = float(start_timeout_s)
        self._ctx = multiprocessing.get_context(start_method)
        self._proc = None
        self._conn = None
        self._requests = ShmArena()   # parent-owned outbound arena
        self._responses = ShmReader()  # attachments to the worker's arena

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid if self._proc is not None else None

    def start(self) -> dict:
        from repro.cluster.worker import worker_main

        if self.alive:
            self.close(graceful=False)
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.spec, self.options),
            name=f"repro-replica-{self.index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # the worker holds the only other end now
        deadline = time.monotonic() + self.start_timeout_s
        while not parent_conn.poll(0.02):
            if not proc.is_alive():
                parent_conn.close()
                raise WorkerStartupError(
                    f"replica {self.index} died during startup (exit code {proc.exitcode})"
                )
            if time.monotonic() > deadline:
                proc.kill()
                parent_conn.close()
                raise WorkerStartupError(
                    f"replica {self.index} did not hand-shake within {self.start_timeout_s:g}s"
                )
        message = parent_conn.recv()
        if message[0] != "ready":
            detail = message[1] if len(message) > 1 else "?"
            parent_conn.close()
            proc.join(timeout=2.0)
            raise WorkerStartupError(f"replica {self.index} failed to build its session:\n{detail}")
        self._proc, self._conn = proc, parent_conn
        return message[1]

    def send(self, message: tuple) -> None:
        if self._conn is None:
            raise BrokenPipeError(f"replica {self.index} transport is not connected")
        if message[0] == "run":
            # ("run", batch, seq[, ctx]): the batch array moves through
            # shared memory; the optional trailing trace-context dict --
            # and any future protocol extension -- rides the pipe as-is.
            batch, seq = message[1], message[2]
            ref = self._requests.write(batch)
            self._conn.send(("run", ref, seq) + tuple(message[3:]))
        else:
            self._conn.send(message)

    def poll(self, timeout_s: float) -> bool:
        return self._conn is not None and self._conn.poll(timeout_s)

    def recv(self) -> tuple:
        message = self._conn.recv()
        if message[0] == "ok":
            # ("ok", seq, ref, compute_s[, obs]): materialize the result
            # array, pass any trailing worker-observability dict through.
            seq, out_ref, compute_s = message[1], message[2], message[3]
            return ("ok", seq, self._responses.take(out_ref), compute_s) + tuple(message[4:])
        return message

    def close(self, graceful: bool = True) -> None:
        conn, self._conn = self._conn, None
        proc, self._proc = self._proc, None
        if conn is not None:
            if graceful and proc is not None and proc.is_alive():
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        if proc is not None:
            proc.join(timeout=5.0 if graceful else 0.5)
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=5.0)
            proc.close()
        # Reclaim the worker's response arena unconditionally.  Only a
        # worker that processed ``stop`` unlinks its own arena; one that
        # was already dead at close, crashed mid-call, or had to be
        # kill()ed never does -- and distinguishing those exit paths
        # reliably is not worth it when a second unlink is a harmless
        # FileNotFoundError (swallowed before any tracker message).
        self._responses.unlink_all()
        self._requests.close(unlink=True)

    def describe(self) -> str:
        return f"local(pid={self.pid})"


# ---------------------------------------------------------------------- #
# Socket: length-prefixed frames over TCP to a repro-worker process
# ---------------------------------------------------------------------- #
class SocketTransport(Transport):
    """Talk to a ``repro-worker`` process over TCP.

    :meth:`start` connects to ``address`` (``"host:port"``), ships an
    ``("init", spec, options)`` frame, and waits for the worker's
    ``ready``/``fatal`` handshake -- the worker builds its session from
    the spec it just received, so nothing model-specific needs to exist
    on the remote host beyond the ``repro`` package itself.  A restart is
    a reconnect: the worker entrypoint keeps listening after a
    conversation ends, rebuilding a fresh session per connection.
    """

    name = "socket"

    def __init__(
        self,
        spec,
        address,
        *,
        options: Optional[dict] = None,
        connect_timeout_s: float = 10.0,
        start_timeout_s: float = 120.0,
    ):
        if connect_timeout_s <= 0 or start_timeout_s <= 0:
            raise ValueError("timeouts must be > 0")
        self.spec = spec
        self.address = parse_address(address)
        self.options = dict(options or {})
        self.connect_timeout_s = float(connect_timeout_s)
        self.start_timeout_s = float(start_timeout_s)
        self._sock: Optional[socket.socket] = None
        self._buffer = FrameBuffer()
        self._broken = False

    @property
    def alive(self) -> bool:
        return self._sock is not None and not self._broken

    def start(self) -> dict:
        self.close(graceful=False)
        host, port = self.address
        try:
            sock = socket.create_connection((host, port), timeout=self.connect_timeout_s)
        except OSError as exc:
            raise WorkerStartupError(f"cannot reach worker at {host}:{port}: {exc}") from exc
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        sock.settimeout(None)  # blocking sends; receives go through select
        self._sock = sock
        self._buffer = FrameBuffer()
        self._broken = False
        try:
            send_message(sock, ("init", self.spec, self.options))
            deadline = time.monotonic() + self.start_timeout_s
            message = recv_message(sock, self._buffer, deadline)
        except (TimeoutError, EOFError, OSError) as exc:
            self.close(graceful=False)
            raise WorkerStartupError(
                f"worker at {host}:{port} did not hand-shake: {exc}"
            ) from exc
        if message[0] != "ready":
            detail = message[1] if len(message) > 1 else "?"
            self.close(graceful=False)
            raise WorkerStartupError(
                f"worker at {host}:{port} failed to build its session:\n{detail}"
            )
        return message[1]

    def send(self, message: tuple) -> None:
        if not self.alive:
            raise BrokenPipeError(f"worker transport to {self.address} is not connected")
        try:
            send_message(self._sock, message)
        except OSError:
            self._broken = True
            raise

    def poll(self, timeout_s: float) -> bool:
        if self._buffer.pending:
            return True
        if not self.alive:
            return False
        try:
            readable, _, _ = select.select([self._sock], [], [], max(0.0, timeout_s))
            if not readable:
                return False
            chunk = self._sock.recv(_CHUNK)
        except (OSError, ValueError):
            self._broken = True
            return False
        if not chunk:  # peer closed: the conversation is over
            self._broken = True
            return False
        self._buffer.feed(chunk)
        return self._buffer.pending

    def recv(self) -> tuple:
        message = self._buffer.next_message()
        if message is not None:
            return message
        if not self.alive:
            raise EOFError(f"worker at {self.address} closed the connection")
        return recv_message(self._sock, self._buffer)

    def close(self, graceful: bool = True) -> None:
        sock, self._sock = self._sock, None
        if sock is None:
            return
        if graceful and not self._broken:
            try:
                send_message(sock, ("stop",))
            except OSError:
                pass
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self._buffer = FrameBuffer()
        self._broken = False

    def describe(self) -> str:
        host, port = self.address
        return f"socket({host}:{port})"
