"""Replica routing policies: which worker gets the next fused batch.

Replicas are rarely symmetric in practice -- one lands on a busy core,
one shares a cache with a noisy neighbour, one is a deliberately slower
device class (the asymmetric-multicore iso-metric argument from
PAPERS.md applies to replica fleets too).  Blind round-robin keeps
feeding the slow replica its full share and the tail latency of the
whole group degrades to the slowest member.  The alternatives here route
on two live signals the :class:`~repro.cluster.Replica` handles already
maintain:

* ``in_flight`` -- calls dispatched-but-unanswered (queue depth), and
* ``ewma_latency_ms`` -- an exponentially-weighted average of recent
  call wall time (which is where a handicapped replica shows up).

Three policies:

:class:`RoundRobinRouter`
    Cycle through alive replicas.  Zero state about load; the baseline.
:class:`LeastLoadedRouter`
    Scan all replicas, pick the lowest ``(in_flight, ewma latency)``.
    Optimal signal use, O(N) per decision, and under concurrent
    dispatchers all traffic herds to the same momentary winner.
:class:`PowerOfTwoChoicesRouter`
    Sample two distinct replicas uniformly, keep the better one.  The
    classic balanced-allocations result: an exponential improvement in
    maximum queue depth over random/round-robin placement for the price
    of two lookups, with no herding (different dispatchers sample
    different pairs).  Deterministically seeded by default so runs are
    reproducible.

All selections ignore dead replicas and an ``exclude`` set (the group's
retry path excludes replicas that already failed this batch).  Routers
hold per-group state (cursor, RNG): give each group its own instance.
"""

from __future__ import annotations

import random
from typing import NamedTuple, Optional, Sequence, Set

from repro.cluster.errors import NoReplicaAvailableError

__all__ = [
    "ReplicaView",
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "PowerOfTwoChoicesRouter",
    "make_router",
]


class ReplicaView(NamedTuple):
    """The load signals a router is allowed to see for one replica."""

    index: int
    alive: bool
    in_flight: int
    ewma_latency_ms: float


def _eligible(views: Sequence[ReplicaView], exclude: Optional[Set[int]]) -> list:
    exclude = exclude or set()
    alive = [view for view in views if view.alive and view.index not in exclude]
    if not alive:
        raise NoReplicaAvailableError(
            f"no eligible replica ({sum(1 for v in views if v.alive)} alive of {len(views)}, "
            f"{len(exclude)} excluded)"
        )
    return alive


def _load_key(view: ReplicaView):
    """Primary signal queue depth; EWMA latency breaks ties (prefers the
    structurally faster replica of an asymmetric pair)."""
    return (view.in_flight, view.ewma_latency_ms, view.index)


class Router:
    """Selection interface consulted by :class:`~repro.cluster.ReplicaGroup`."""

    #: Short name used in stats/benchmark output.
    name = "router"

    def select(self, views: Sequence[ReplicaView], exclude: Optional[Set[int]] = None) -> int:
        """Index of the replica to dispatch to.

        Raises :class:`~repro.cluster.NoReplicaAvailableError` when every
        replica is dead or excluded.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class RoundRobinRouter(Router):
    """Cycle through alive replicas in index order."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, views: Sequence[ReplicaView], exclude: Optional[Set[int]] = None) -> int:
        alive = _eligible(views, exclude)
        chosen = alive[self._cursor % len(alive)]
        self._cursor += 1
        return chosen.index


class LeastLoadedRouter(Router):
    """Full scan for the lowest ``(in_flight, ewma latency)`` replica."""

    name = "least_loaded"

    def select(self, views: Sequence[ReplicaView], exclude: Optional[Set[int]] = None) -> int:
        return min(_eligible(views, exclude), key=_load_key).index


class PowerOfTwoChoicesRouter(Router):
    """Sample two replicas, keep the less loaded (balanced allocations).

    ``seed`` makes the sampling reproducible (benchmarks, tests); pass
    ``seed=None`` for OS entropy.
    """

    name = "power_of_two_choices"

    def __init__(self, seed: Optional[int] = 0x5EED):
        self._rng = random.Random(seed)

    def select(self, views: Sequence[ReplicaView], exclude: Optional[Set[int]] = None) -> int:
        alive = _eligible(views, exclude)
        if len(alive) == 1:
            return alive[0].index
        first, second = self._rng.sample(alive, 2)
        return min((first, second), key=_load_key).index


_ROUTERS = {
    "round_robin": RoundRobinRouter,
    "least_loaded": LeastLoadedRouter,
    "power_of_two_choices": PowerOfTwoChoicesRouter,
}


def make_router(spec, **kwargs) -> Router:
    """Resolve a router: an instance (passed through), or a name.

    >>> from repro.cluster import make_router
    >>> make_router("round_robin").name
    'round_robin'
    >>> make_router("power_of_two_choices", seed=7).name
    'power_of_two_choices'
    """
    if isinstance(spec, Router):
        if kwargs:
            raise ValueError("router options need a router *name*, not an instance")
        return spec
    try:
        cls = _ROUTERS[spec]
    except (KeyError, TypeError):
        known = ", ".join(sorted(_ROUTERS))
        raise ValueError(f"unknown router {spec!r} (known: {known})") from None
    return cls(**kwargs)
