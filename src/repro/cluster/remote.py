"""The ``repro-worker`` entrypoint: serve one replica over a TCP socket.

This is the remote half of :class:`~repro.cluster.transport.SocketTransport`.
Launch it on any host that has the ``repro`` package::

    # installed (console script) or straight from a checkout:
    repro-worker --host 0.0.0.0 --port 7070
    PYTHONPATH=src python -m repro.cluster.remote --host 0.0.0.0 --port 7070

and point a :class:`~repro.cluster.ReplicaGroup` (or
``InferenceServer(..., cluster_options={"workers": [...]})``) at
``host:7070``.  The worker carries **no model state of its own**: each
connection opens with an ``("init", spec, options)`` frame, the worker
builds its :class:`~repro.engine.InferenceSession` from that
:class:`~repro.engine.SessionSpec`, answers the same ``run``/``ping``/
``stop`` conversation as a spawned local worker, and then goes back to
listening -- so a parent-side restart is simply a reconnect, and a new
model version is simply a new connection.

One conversation at a time: a replica serializes its calls anyway, and a
worker process is one core's worth of FFT compute -- parents needing more
parallelism run more workers.  ``--port 0`` binds an ephemeral port and
prints the bound address (``repro-worker listening on host:port``) so
launchers can scrape it.

Security note: frames are pickle-encoded (see
:mod:`repro.cluster.transport`) -- only ever expose a worker to parents
you trust, on a network you trust.
"""

from __future__ import annotations

import argparse
import signal
import socket
import traceback
from typing import Optional

from repro.cluster.transport import FrameBuffer, recv_message, send_message
from repro.cluster.worker import probe_session, run_batch, worker_obs

__all__ = ["WorkerServer", "serve", "main"]


def _serve_connection(conn: socket.socket, store_root: Optional[str] = None) -> None:
    """Answer one parent conversation: init handshake, then the call loop."""
    buffer = FrameBuffer()
    try:
        message = recv_message(conn, buffer)
    except (EOFError, OSError):
        return  # parent connected and vanished; nothing to answer
    if message[0] != "init":
        try:
            send_message(conn, ("fatal", f"expected an init frame, got {message[0]!r}"))
        except OSError:
            pass
        return
    _, spec, options = message
    options = options or {}
    handicap_s = float(options.get("handicap_s") or 0.0)
    if store_root is not None and hasattr(spec, "with_location"):
        # A store ref minted against the *parent's* path: re-root it onto
        # this host's replica of the store (--store).  The pinned content
        # hash still guards the load, so a stale replica fails loudly.
        spec = spec.with_location(store_root)
    try:
        session = spec.build()
        meta = probe_session(session)
    except Exception:
        try:
            send_message(conn, ("fatal", traceback.format_exc(limit=8)))
        except OSError:
            pass
        return
    try:
        send_message(conn, ("ready", meta))
        while True:
            try:
                message = recv_message(conn, buffer)
            except (EOFError, OSError):
                return  # parent is gone; nothing left to answer
            kind = message[0]
            if kind == "stop":
                return
            if kind == "ping":
                send_message(conn, ("pong", message[1]))
                continue
            if kind != "run":  # pragma: no cover - protocol guard
                send_message(
                    conn, ("err", message[1] if len(message) > 1 else -1, f"unknown message {kind!r}")
                )
                continue
            batch, seq = message[1], message[2]
            ctx = message[3] if len(message) > 3 else None
            try:
                result, compute_s = run_batch(session, batch, handicap_s)
            except Exception:
                send_message(conn, ("err", seq, traceback.format_exc(limit=8)))
                continue
            if ctx is not None:
                # Traced request: the reply carries this worker's timing
                # payload for the parent's trace stitching (same contract
                # as the pipe+shm worker).
                send_message(conn, ("ok", seq, result, compute_s, worker_obs(compute_s, handicap_s)))
            else:
                send_message(conn, ("ok", seq, result, compute_s))
    except OSError:
        return  # send-side breakage: the parent will reconnect if it cares


class WorkerServer:
    """A listening ``repro-worker``: accept parents serially, serve each.

    Usable programmatically (tests run one in a background thread against
    ``port=0``) and from the CLI (:func:`main`).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *, store_root: Optional[str] = None):
        self._listener = socket.create_server((host, port), reuse_port=False)
        self._listener.settimeout(0.2)  # makes close() observable in accept loops
        self._closed = False
        self.host = host
        #: Local model-store root (``--store``): init frames carrying a
        #: :class:`~repro.store.StoreRef` are re-rooted here, so the
        #: worker cold-starts from its own disk instead of the parent's.
        self.store_root = store_root

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        return self._listener.getsockname()[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def serve_forever(self, once: bool = False) -> None:
        """Accept and serve conversations until :meth:`close` (or one, with ``once``)."""
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:  # pragma: no cover - platform-dependent
                pass
            try:
                _serve_connection(conn, self.store_root)
            finally:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
            if once:
                return

    def serve_in_thread(self):
        """Run :meth:`serve_forever` on a daemon thread; returns the thread."""
        import threading

        thread = threading.Thread(
            target=self.serve_forever, name=f"repro-worker-{self.port}", daemon=True
        )
        thread.start()
        return thread

    def close(self) -> None:
        self._closed = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def __enter__(self) -> "WorkerServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    once: bool = False,
    quiet: bool = False,
    store_root: Optional[str] = None,
) -> None:
    """Blocking convenience wrapper: listen and serve until interrupted."""
    with WorkerServer(host, port, store_root=store_root) as server:
        if not quiet:
            print(f"repro-worker listening on {server.address}", flush=True)
        server.serve_forever(once=once)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Serve DONN inference batches to a remote ReplicaGroup over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="interface to bind (default %(default)s)")
    parser.add_argument("--port", type=int, default=7070, help="port to bind; 0 = ephemeral (default %(default)s)")
    parser.add_argument("--once", action="store_true", help="serve a single conversation, then exit")
    parser.add_argument("--quiet", action="store_true", help="do not print the bound address")
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="local model-store root: StoreRef init frames load from this replica "
        "of the store instead of the parent's path",
    )
    args = parser.parse_args(argv)
    # Exit cleanly on SIGTERM so supervisors (and `timeout`) see rc 0 paths.
    try:
        signal.signal(signal.SIGTERM, signal.default_int_handler)
    except (ValueError, OSError):  # pragma: no cover - non-main thread / platform
        pass
    try:
        serve(args.host, args.port, once=args.once, quiet=args.quiet, store_root=args.store)
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entrypoint
    raise SystemExit(main())
