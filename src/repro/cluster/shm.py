"""Shared-memory array transport between the parent and replica workers.

Batches of images are the bulk of every cluster message.  Pickling them
through a pipe would copy each array twice (serialize + deserialize) and
hold the GIL while doing it; instead, array *payloads* travel through
:mod:`multiprocessing.shared_memory` blocks and only tiny descriptors
(block name, shape, dtype) cross the pipe.

Two pieces:

* :class:`ShmArena` -- the sender side: one owned, grow-on-demand block.
  ``write(array)`` copies the array in and returns the descriptor to put
  on the pipe.  The block is reused across calls and only reallocated
  (doubling) when a batch outgrows it, so steady-state traffic performs
  zero shared-memory system calls.
* :class:`ShmReader` -- the receiver side: attaches blocks by name
  (cached until the sender reallocates under a new name) and returns
  zero-copy ndarray views.

Each direction has its own arena owned by its writer: the parent owns a
request arena per replica, each worker owns its response arena.  The
reader must copy data out (or finish using the view) before the next
message, since the writer will overwrite the block.

Resource-tracker note: the writer unlinks its own block on a clean
shutdown, and the reader's teardown (:meth:`ShmReader.unlink_all`) also
unlinks whatever it still has attached -- whichever side gets there
first wins and the other's attempt is a swallowed ``FileNotFoundError``
(raised before any tracker message, so the tracker sees exactly one
unregister per name).  Attachments must not add cleanup tracking of
their own: on Python >= 3.13 the attach passes ``track=False``; on
earlier versions an attach re-registers the name, which is harmless --
the tracker's cache is a set, so the owner's registration is simply
deduplicated.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["ShmArena", "ShmReader", "ArrayRef"]

#: Pipe-sized descriptor of an array sitting in a shared-memory block.
ArrayRef = Tuple[str, tuple, str]


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without adding cleanup tracking."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # Python >= 3.13
    except TypeError:  # pragma: no cover - version-dependent branch
        # <= 3.12: attach registers the (already-registered) name; the
        # tracker cache is a set, so this deduplicates away (docstring).
        return shared_memory.SharedMemory(name=name)


class ShmArena:
    """One owned, reusable shared-memory block for outbound arrays."""

    def __init__(self, min_bytes: int = 1 << 16):
        if min_bytes < 1:
            raise ValueError("min_bytes must be >= 1")
        self._min_bytes = int(min_bytes)
        self._block: Optional[shared_memory.SharedMemory] = None

    @property
    def name(self) -> Optional[str]:
        return self._block.name if self._block is not None else None

    @property
    def nbytes(self) -> int:
        return self._block.size if self._block is not None else 0

    def _ensure(self, nbytes: int) -> shared_memory.SharedMemory:
        if self._block is not None and self._block.size >= nbytes:
            return self._block
        # Doubling growth: a burst of one huge batch does not force a
        # reallocation for every slightly-bigger batch after it.
        size = max(self._min_bytes, self.nbytes)
        while size < nbytes:
            size *= 2
        self.close(unlink=True)
        self._block = shared_memory.SharedMemory(create=True, size=size)
        return self._block

    def write(self, array: np.ndarray) -> ArrayRef:
        """Copy ``array`` into the arena; returns the pipe descriptor."""
        array = np.ascontiguousarray(array)
        block = self._ensure(max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
        view[...] = array
        return (block.name, array.shape, array.dtype.str)

    def close(self, unlink: bool = True) -> None:
        """Release (and, as owner, unlink) the current block.

        Unlink runs *first*: it only needs the name, while ``close`` can
        raise ``BufferError`` when a stale ndarray view still pins the
        mmap -- and an aborted close must never cost the unlink (the
        pages are freed when the last mapping dies regardless).
        """
        if self._block is None:
            return
        block, self._block = self._block, None
        if unlink:
            try:
                block.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover - already gone
                pass
        try:
            block.close()
        except (BufferError, OSError):  # pragma: no cover - view still exported
            pass


class ShmReader:
    """Attach-side cache: descriptors -> zero-copy ndarray views."""

    def __init__(self) -> None:
        self._attached: Dict[str, shared_memory.SharedMemory] = {}

    def view(self, ref: ArrayRef) -> np.ndarray:
        """Zero-copy view of the array a descriptor points at.

        The view aliases the sender's buffer: copy out (``np.array``)
        anything that must survive past the next message.
        """
        name, shape, dtype = ref
        block = self._attached.get(name)
        if block is None:
            # The sender reallocated under a new name: drop stale
            # attachments (their segments are about to be unlinked).
            self.close()
            block = _attach_untracked(name)
            self._attached[name] = block
        return np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=block.buf)

    def take(self, ref: ArrayRef) -> np.ndarray:
        """Owned copy of the referenced array (safe past the next message)."""
        return np.array(self.view(ref))

    def close(self) -> None:
        """Detach every cached block (never unlinks -- reader side).

        ``BufferError`` (a consumer's ndarray view still pinning the
        mmap) is swallowed like ``OSError``: the mapping dies with the
        last reference, and cleanup must keep going.
        """
        attached, self._attached = self._attached, {}
        for block in attached.values():
            try:
                block.close()
            except (BufferError, OSError):  # pragma: no cover - defensive
                pass

    def unlink_all(self) -> None:
        """Best-effort unlink of attached blocks, then detach.

        Called at every worker teardown: a worker that processed its
        ``stop`` already unlinked its own arena (this then no-ops on
        ``FileNotFoundError``), while a crashed or killed worker never
        did -- the parent's attachments are the last handle that can keep
        ``/dev/shm`` from leaking.
        """
        for block in list(self._attached.values()):
            try:
                block.unlink()
            except (FileNotFoundError, OSError):
                pass
        self.close()
