"""Replica groups: N worker processes behind one routed dispatch point.

A :class:`ReplicaGroup` owns ``replicas`` worker processes all built from
the same :class:`~repro.engine.SessionSpec`, routes each fused batch to
one of them through a pluggable :class:`~repro.cluster.router.Router`,
and keeps the fleet healthy: a worker that crashes or wedges mid-call is
restarted in the background while the batch retries on another replica
(bounded -- callers get :class:`~repro.cluster.ReplicaCrashError` rather
than a hang when the budget runs out).  Restarts back off exponentially
per replica (capped), so a worker binary that crash-loops on startup
cannot respawn as fast as batches fail.

The fleet is **elastic**: :meth:`add_replica`, :meth:`remove_replica`
and :meth:`scale_to` change the membership at runtime.  Removal is
drain-before-terminate -- the victim is first hidden from the router
(no new dispatches), its in-flight calls complete, and only then is the
worker stopped -- so scaling down drops zero accepted requests.  The
:class:`~repro.cluster.autoscale.Autoscaler` drives these primitives to
hold a latency budget at minimum process count.

The group is the *dispatch seam* the serving layer plugs into: a
:class:`~repro.serve.DynamicBatcher` hands its coalesced batch to
:meth:`infer` instead of calling the in-process session, which moves the
FFT work out of the GIL-bound server process entirely.  The group also
quacks enough like a session (``input_shape``, ``kind``, empty-batch
``run``) for the server's validation and registry plumbing to treat it
uniformly.

Thread/async-safety: :meth:`infer`/:meth:`rescue` are coroutines bound
to the caller's running loop; the blocking pipe work happens in the
default thread-pool executor.  :meth:`infer_sync` is the same dispatch
path for synchronous callers (tests, scripts).  Internal counters are
guarded by a lock; membership changes are serialized by their own
re-entrant lock and safe under concurrent dispatch.  One group may serve
many concurrent callers.
"""

from __future__ import annotations

import asyncio
import functools
import logging
import threading
import time
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.errors import (
    NoReplicaAvailableError,
    ReplicaCrashError,
    ReplicaTimeoutError,
)
from repro.cluster.replica import Replica
from repro.cluster.router import ReplicaView, Router, make_router
from repro.cluster.transport import LocalTransport, SocketTransport
from repro.engine.spec import SessionSpec
from repro.obs.log import get_logger as _obs_logger
from repro.obs.trace import get_dispatch_context

__all__ = ["ReplicaGroup"]

logger = logging.getLogger(__name__)


class ReplicaGroup:
    """Process-sharded replicas of one model behind a routing policy.

    Parameters
    ----------
    spec:
        The :class:`~repro.engine.SessionSpec` every worker builds its
        session from (``repro.engine.compile(model).to_spec()`` or
        ``SessionSpec.from_model(model, ...)``).
    replicas:
        Local worker-process count (may be 0 when ``workers`` names at
        least one remote worker).  The *initial* fleet size:
        :meth:`scale_to` / :meth:`add_replica` / :meth:`remove_replica`
        change it at runtime.
    workers:
        Optional list of ``"host:port"`` addresses of already-running
        ``repro-worker`` processes (see :mod:`repro.cluster.remote`) to
        attach over :class:`~repro.cluster.transport.SocketTransport`.
        Remote replicas take the indices after the local ones and join
        the same routing/retry/restart machinery -- a restart is simply
        a reconnect.
    router:
        ``"round_robin"`` / ``"least_loaded"`` / ``"power_of_two_choices"``
        or a ready :class:`~repro.cluster.Router` instance (routers hold
        per-group state: one instance per group).
    max_retries:
        How many *other* replicas a batch may be retried on after a
        crash/timeout before the error propagates to callers.
    handicaps:
        Optional ``{replica_index: seconds}`` of artificial per-call
        sleep -- models asymmetric replica capacity in tests and
        benchmarks (``bench_sharded_serving.py``).
    call_timeout_s / start_timeout_s:
        Per-call answer deadline (a silent worker counts as dead) and
        worker startup handshake deadline.
    restart_backoff_s / restart_backoff_cap_s:
        Capped exponential backoff between *failed* restart attempts of
        one replica (``backoff * 2**(attempts-1)``, capped); consecutive
        failures are observable as ``restart_attempts`` in :meth:`stats`.
    drain_timeout_s:
        Default :meth:`remove_replica` drain deadline: how long a
        departing replica may take to finish its in-flight calls before
        it is terminated anyway (logged, never silent).
    close_timeout_s:
        How long :meth:`close` waits for in-flight background restarts
        to finish before terminating workers around them; a restart
        thread still running at the deadline is logged, not silently
        abandoned.
    start_method:
        ``multiprocessing`` start method; ``spawn`` (default) is the one
        supported everywhere and the only one safe under threads.

    Raises
    ------
    ValueError
        For ``replicas < 0``/``max_retries < 0``, an empty fleet, or an
        unknown router.
    WorkerStartupError
        From :meth:`start` when a worker cannot build its session.
    ReplicaCrashError / ReplicaTimeoutError
        From :meth:`infer` once the retry budget is exhausted.
    NoReplicaAvailableError
        When every replica is dead (or, for :meth:`rescue`, busy).
    """

    def __init__(
        self,
        spec: SessionSpec,
        replicas: int = 2,
        router="round_robin",
        *,
        workers: Optional[List[str]] = None,
        max_retries: int = 2,
        handicaps: Optional[Dict[int, float]] = None,
        call_timeout_s: float = 60.0,
        start_timeout_s: float = 120.0,
        restart_backoff_s: float = 0.5,
        restart_backoff_cap_s: float = 30.0,
        drain_timeout_s: float = 30.0,
        close_timeout_s: float = 60.0,
        start_method: str = "spawn",
        name: str = "",
        clock=None,
    ):
        workers = list(workers or [])
        if replicas < 0:
            raise ValueError("replicas must be >= 0")
        if replicas + len(workers) < 1:
            raise ValueError("need at least one replica (local or remote worker)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if drain_timeout_s <= 0 or close_timeout_s <= 0:
            raise ValueError("drain/close timeouts must be > 0")
        self.spec = spec
        self.name = name or spec.model_type
        self.max_retries = int(max_retries)
        self.drain_timeout_s = float(drain_timeout_s)
        self.close_timeout_s = float(close_timeout_s)
        self._router: Router = make_router(router)
        self._call_timeout_s = float(call_timeout_s)
        self._start_timeout_s = float(start_timeout_s)
        self._restart_backoff_s = float(restart_backoff_s)
        self._restart_backoff_cap_s = float(restart_backoff_cap_s)
        self._start_method = start_method
        #: Monotonic time source for restart-backoff decisions (injected by
        #: tests; real deployments run on ``time.monotonic``).  Drain and
        #: close deadlines deliberately stay on wall time -- they bound
        #: real worker behavior, not control-law bookkeeping.
        self._clock = clock if clock is not None else time.monotonic
        handicaps = handicaps or {}
        self._replicas: List[Replica] = [
            self._new_local_replica(index, handicap_s=float(handicaps.get(index, 0.0)))
            for index in range(int(replicas))
        ]
        for offset, address in enumerate(workers):
            index = int(replicas) + offset
            self._replicas.append(
                Replica(
                    spec,
                    index,
                    transport=SocketTransport(
                        spec,
                        address,
                        options={"handicap_s": float(handicaps.get(index, 0.0))},
                        start_timeout_s=self._start_timeout_s,
                    ),
                    handicap_s=float(handicaps.get(index, 0.0)),
                    call_timeout_s=self._call_timeout_s,
                    start_timeout_s=self._start_timeout_s,
                    restart_backoff_s=self._restart_backoff_s,
                    restart_backoff_cap_s=self._restart_backoff_cap_s,
                    clock=self._clock,
                )
            )
        self._lock = threading.Lock()  # in-flight counters + restart/drain flags
        self._membership = threading.RLock()  # serializes add/remove/scale_to
        self._by_index: Dict[int, Replica] = {r.index: r for r in self._replicas}
        self._next_index = int(replicas) + len(workers)
        self._restarting: set = set()
        self._draining: set = set()
        self._closing = threading.Event()  # wakes backoff/drain sleepers on close
        self._started = False
        self._closed = False

    def _new_local_replica(self, index: int, *, handicap_s: float = 0.0, spec=None) -> Replica:
        return Replica(
            spec if spec is not None else self.spec,
            index,
            handicap_s=handicap_s,
            call_timeout_s=self._call_timeout_s,
            start_timeout_s=self._start_timeout_s,
            start_method=self._start_method,
            restart_backoff_s=self._restart_backoff_s,
            restart_backoff_cap_s=self._restart_backoff_cap_s,
            clock=self._clock,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        return self._started and not self._closed

    @property
    def router_name(self) -> str:
        return self._router.name

    def start(self) -> "ReplicaGroup":
        """Spawn all workers (concurrently) and wait for their handshakes."""
        if self._closed:
            raise RuntimeError(f"replica group {self.name!r} is closed")
        if self._started:
            return self
        with self._lock:
            pending = [replica for replica in self._replicas if not replica.alive]
        errors = self._boot(pending)
        if errors:
            # Tear down whatever booted, but leave the group *open*: a
            # transient startup failure (slow host missing a handshake
            # deadline) must stay retryable, not brick the group.
            for replica in self._replicas:
                replica.close()
            raise errors[0]
        self._started = True
        return self

    @staticmethod
    def _boot(pending: List[Replica]) -> List[BaseException]:
        """Start ``pending`` replicas concurrently; returns their errors.

        Session compilation dominates startup; overlap the workers'
        spawn+compile phases instead of paying them serially.
        """
        errors: List[BaseException] = []

        def boot(replica: Replica) -> None:
            try:
                replica.start()
            except BaseException as exc:  # noqa: BLE001 - surfaced by callers
                errors.append(exc)

        threads = [threading.Thread(target=boot, args=(replica,), daemon=True) for replica in pending]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return errors

    def close(self) -> None:
        """Stop every worker process; idempotent.

        Waits out in-flight background revives first (up to
        ``close_timeout_s``): a restart thread that already claimed its
        slot may be mid-spawn, and tearing down around it would orphan
        the worker it is about to create.  Close runs after the revive
        finishes and reclaims whatever it spawned; a revive still running
        at the deadline is logged and closed around rather than silently
        abandoned.
        """
        if self._closed:
            return
        self._closed = True
        self._started = False
        self._closing.set()  # wake backoff/drain sleepers promptly
        deadline = time.monotonic() + self.close_timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if not self._restarting:
                    break
            time.sleep(0.02)
        else:
            with self._lock:
                stuck = sorted(self._restarting)
            if stuck:
                logger.warning(
                    "replica group %r: restart thread(s) for replica(s) %s still running "
                    "after the %.1fs close drain; terminating workers around them",
                    self.name,
                    stuck,
                    self.close_timeout_s,
                )
                _obs_logger().warning(
                    "cluster.close_drain_timeout",
                    group=self.name,
                    replicas=stuck,
                    timeout_s=self.close_timeout_s,
                )
        # The membership lock serializes the terminate sweep with any
        # in-progress scale_to/add_replica (e.g. an autoscaler tick that
        # cannot be interrupted): either the resize finishes first and
        # its workers are closed here, or it observes _closed and bails.
        with self._membership:
            with self._lock:
                replicas = list(self._replicas)
        for replica in replicas:
            replica.close()

    def __enter__(self) -> "ReplicaGroup":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Elastic membership
    # ------------------------------------------------------------------ #
    def add_replica(self, *, handicap_s: float = 0.0, spec=None) -> int:
        """Grow the fleet by one local worker; returns its index.

        On a started group the worker is spawned (and its session
        compiled) *before* it joins the routing table, so the router
        never selects a replica that cannot serve.  On an idle group the
        replica is appended unstarted and boots with :meth:`start`.
        ``spec`` overrides the group's spec for this one worker -- the
        seam :meth:`swap_spec` rolls new versions in through.
        """
        with self._membership:
            if self._closed:
                raise RuntimeError(f"replica group {self.name!r} is closed")
            with self._lock:
                index = self._next_index
                self._next_index += 1
            replica = self._new_local_replica(index, handicap_s=float(handicap_s), spec=spec)
            if self._started:
                replica.start()
            with self._lock:
                self._replicas.append(replica)
                self._by_index[index] = replica
            return index

    def remove_replica(self, index: Optional[int] = None, *, drain_timeout_s: Optional[float] = None) -> int:
        """Shrink the fleet by one worker, drain-before-terminate.

        The victim (``index``, or by default the newest local replica) is
        first marked *draining*: the router stops selecting it, while
        calls already dispatched to it run to completion.  Only once its
        in-flight count reaches zero (or the drain deadline expires --
        logged, never silent) is the worker terminated and dropped from
        the membership.  Returns the removed index.

        Raises ``ValueError`` when asked to remove the last replica, an
        unknown index, or one already draining.
        """
        timeout = self.drain_timeout_s if drain_timeout_s is None else float(drain_timeout_s)
        with self._membership:
            with self._lock:
                candidates = [r for r in self._replicas if r.index not in self._draining]
                if len(candidates) <= 1:
                    raise ValueError(f"cannot remove the last replica of group {self.name!r}")
                if index is None:
                    # Prefer shedding a spawned local worker; remote
                    # repro-workers are externally owned capacity.
                    locals_ = [r for r in candidates if isinstance(r.transport, LocalTransport)]
                    victim = (locals_ or candidates)[-1]
                    index = victim.index
                else:
                    victim = self._by_index.get(index)
                    if victim is None:
                        raise ValueError(f"no replica with index {index} in group {self.name!r}")
                    if index in self._draining:
                        raise ValueError(f"replica {index} is already draining")
                self._draining.add(index)
            # Drain outside the lock: dispatched calls decrement in_flight
            # as they complete, and a pending background revive must also
            # clear its slot before the worker is torn down under it.
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline and not self._closed:
                with self._lock:
                    if victim.in_flight == 0 and index not in self._restarting:
                        break
                self._closing.wait(0.01)
            else:
                if not self._closed:
                    with self._lock:
                        stuck_calls, restarting = victim.in_flight, index in self._restarting
                    logger.warning(
                        "replica group %r: replica %d still has %d in-flight call(s)%s after the "
                        "%.1fs drain deadline; terminating it anyway",
                        self.name,
                        index,
                        stuck_calls,
                        " (and a pending restart)" if restarting else "",
                        timeout,
                    )
                    _obs_logger().warning(
                        "cluster.drain_timeout",
                        group=self.name,
                        replica=index,
                        in_flight=stuck_calls,
                        restarting=restarting,
                        timeout_s=timeout,
                    )
            victim.close()
            with self._lock:
                if victim in self._replicas:
                    self._replicas.remove(victim)
                self._by_index.pop(index, None)
                self._draining.discard(index)
            return index

    def scale_to(self, replicas: int, *, drain_timeout_s: Optional[float] = None) -> int:
        """Grow or shrink the fleet to ``replicas`` workers; returns the new size.

        Growth spawns the new workers concurrently (like :meth:`start`);
        shrinkage removes the newest local replicas one at a time via
        :meth:`remove_replica` (drain-before-terminate).  A partial
        growth failure publishes the workers that did boot before the
        error propagates.
        """
        target = int(replicas)
        if target < 1:
            raise ValueError("scale_to needs at least one replica")
        with self._membership:
            if self._closed:
                raise RuntimeError(f"replica group {self.name!r} is closed")
            while len(self) > target:
                self.remove_replica(drain_timeout_s=drain_timeout_s)
            grow = target - len(self)
            if grow > 0:
                with self._lock:
                    indices = list(range(self._next_index, self._next_index + grow))
                    self._next_index += grow
                fresh = [self._new_local_replica(index) for index in indices]
                errors = self._boot(fresh) if self._started else []
                booted = [replica for replica in fresh if not self._started or replica.alive]
                with self._lock:
                    for replica in booted:
                        self._replicas.append(replica)
                        self._by_index[replica.index] = replica
                if errors:
                    for replica in fresh:
                        if replica not in booted:
                            replica.close()
                    raise errors[0]
            return len(self)

    def swap_spec(self, spec, *, drain_timeout_s: Optional[float] = None) -> int:
        """Zero-downtime rolling swap: rebuild every replica from ``spec``.

        On a started group each member is replaced spawn-then-publish /
        drain-then-retire: the new-version worker boots (and compiles)
        *before* it joins the routing table, and only then is one
        old-version worker hidden from the router, drained of its
        in-flight calls, and terminated -- capacity never dips below the
        pre-swap fleet size and no accepted request is dropped.  Remote
        ``repro-worker`` replicas are drained and *reconnected* with the
        new spec instead (their init handshake carries it).  Later
        growth (:meth:`add_replica`, :meth:`scale_to`, the autoscaler)
        spawns the new version.  Returns the fleet size.

        Serialized with all other membership changes; a failed new-worker
        spawn propagates with the old fleet still intact and serving.
        """
        with self._membership:
            if self._closed:
                raise RuntimeError(f"replica group {self.name!r} is closed")
            self.spec = spec
            if not self._started:
                # Idle fleet: retarget the unstarted members in place;
                # they compile the new version on start().
                with self._lock:
                    replicas = list(self._replicas)
                for replica in replicas:
                    replica.spec = spec
                    replica.transport.spec = spec
                return len(self)
            with self._lock:
                outgoing = list(self._replicas)
            for replica in outgoing:
                if isinstance(replica.transport, LocalTransport):
                    self.add_replica(handicap_s=replica.handicap_s, spec=spec)
                    self.remove_replica(replica.index, drain_timeout_s=drain_timeout_s)
                else:
                    self._swap_remote(replica, spec, drain_timeout_s)
            return len(self)

    def _swap_remote(self, replica: Replica, spec, drain_timeout_s: Optional[float]) -> None:
        """Drain one socket-attached replica, then reconnect it on ``spec``.

        A remote worker is externally-owned capacity -- there is no
        second process to spawn-then-publish into, so the swap is a
        drained reconnect: hidden from the router, in-flight calls
        complete, then the fresh connection's init frame carries the new
        spec.  Siblings keep serving throughout.
        """
        timeout = self.drain_timeout_s if drain_timeout_s is None else float(drain_timeout_s)
        with self._lock:
            self._draining.add(replica.index)
        try:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline and not self._closed:
                with self._lock:
                    if replica.in_flight == 0 and replica.index not in self._restarting:
                        break
                self._closing.wait(0.01)
            else:
                if not self._closed:
                    logger.warning(
                        "replica group %r: remote replica %d still busy after the %.1fs "
                        "swap drain; reconnecting it anyway",
                        self.name,
                        replica.index,
                        timeout,
                    )
                    _obs_logger().warning(
                        "cluster.swap_drain_timeout",
                        group=self.name,
                        replica=replica.index,
                        timeout_s=timeout,
                    )
            replica.spec = spec
            replica.transport.spec = spec
            if not self._closed:
                replica.restart()
        finally:
            with self._lock:
                self._draining.discard(replica.index)

    # ------------------------------------------------------------------ #
    # Session-like facade (what the serving layer's plumbing touches)
    # ------------------------------------------------------------------ #
    @property
    def meta(self) -> Optional[dict]:
        for replica in list(self._replicas):
            if replica.meta is not None:
                return replica.meta
        return None

    @property
    def input_shape(self):
        """Per-request payload shape (known once started)."""
        meta = self.meta
        return tuple(meta["input_shape"]) if meta is not None else None

    @property
    def kind(self) -> Optional[str]:
        meta = self.meta
        return meta["kind"] if meta is not None else None

    def run(self, batch, batch_size: Optional[int] = None) -> np.ndarray:
        """Empty-batch semantics only; real traffic goes through :meth:`infer`.

        The server's ``submit_many([])`` path asks the registered session
        for the shape of "no results"; answering that needs no worker
        round-trip.  Any non-empty synchronous call is a programming
        error here -- group dispatch is asynchronous.
        """
        batch = np.asarray(batch, dtype=float)
        if len(batch) == 0:
            meta = self.meta
            if meta is None:
                raise RuntimeError(f"replica group {self.name!r} is not started")
            return np.empty((0, *meta["output_item_shape"]), dtype=np.dtype(meta["output_dtype"]))
        raise RuntimeError(
            "ReplicaGroup dispatches asynchronously: await group.infer(batch) "
            "(or use infer_sync) instead of run()"
        )

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _views(self) -> List[ReplicaView]:
        """Router-visible fleet snapshot; draining replicas are not routable."""
        return [
            ReplicaView(
                index=replica.index,
                alive=(
                    replica.alive
                    and replica.index not in self._restarting
                    and replica.index not in self._draining
                ),
                in_flight=replica.in_flight,
                ewma_latency_ms=replica.ewma_latency_s * 1000.0,
            )
            for replica in self._replicas
        ]

    def _schedule_restart(self, index: int) -> None:
        """Restart a replica on a background thread (at most one at a time).

        The revive honours the replica's capped exponential backoff: a
        worker whose previous restart *failed* is not retried before its
        ``restart_not_before`` instant, so a crash-looping binary costs a
        bounded respawn rate (and one thread), not a thread per failed
        batch.  ``close()`` wakes a waiting revive immediately.
        """
        with self._lock:
            if self._closed or index in self._restarting or index in self._draining:
                return
            replica = self._by_index.get(index)
            if replica is None:
                return
            self._restarting.add(index)

        def revive() -> None:
            outcome: Optional[str] = None
            try:
                delay = replica.restart_not_before - self._clock()
                if delay > 0:
                    self._closing.wait(delay)
                if self._closed or index in self._draining or index not in self._by_index:
                    return
                try:
                    replica.restart()
                    outcome = "restarted"
                except BaseException as exc:  # noqa: BLE001 - recorded, retried with backoff
                    replica.last_error = f"restart failed: {exc}"
                    replica.note_restart_failure()
                    outcome = "failed"
            finally:
                with self._lock:
                    self._restarting.discard(index)
                # Structured log *after* the slot release: callers polling
                # the counters must be able to schedule the next attempt
                # the instant the bookkeeping says they can.
                if outcome == "restarted":
                    _obs_logger().info(
                        "cluster.replica_restarted", group=self.name, replica=index
                    )
                elif outcome == "failed":
                    _obs_logger().warning(
                        "cluster.replica_restart_failed",
                        group=self.name,
                        replica=index,
                        error=replica.last_error,
                        attempts=replica.restart_attempts,
                    )

        threading.Thread(target=revive, name=f"repro-replica-restart-{index}", daemon=True).start()

    def infer_sync(self, batch, obs: Optional[dict] = None) -> np.ndarray:
        """Route one fused batch to a replica; blocking.

        Crash/timeout failures restart the replica in the background and
        retry the batch on another one, up to ``max_retries`` times; the
        last error propagates after that.  Worker-side *request* errors
        (e.g. a malformed batch) are deterministic and propagate
        immediately without retry.

        ``obs`` is the dispatch trace context for a traced batch (see
        :mod:`repro.obs`): the trace-id list rides the wire to the
        worker, and on success the dict is filled in place with where the
        batch actually ran (``replica``, ``transport``, ``retries``,
        ``compute_s``, ``worker``) for span stitching.
        """
        if self._closed:
            raise ReplicaCrashError(f"replica group {self.name!r} is closed")
        batch = np.ascontiguousarray(np.asarray(batch, dtype=float))
        wire_ctx = {"trace_ids": obs.get("trace_ids", [])} if obs is not None else None
        tried: set = set()
        last: Optional[Exception] = None
        for _ in range(self.max_retries + 1):
            with self._lock:
                views = self._views()
                try:
                    index = self._router.select(views, exclude=tried)
                except NoReplicaAvailableError as exc:
                    raise last or exc from None
                replica = self._by_index[index]
                replica.in_flight += 1
            # A replica that died *between* calls never fails a dispatch,
            # so revive it opportunistically while traffic routes around
            # it (draining replicas are already reported dead to the
            # router and are never revived).
            for view in views:
                if not view.alive and view.index not in tried:
                    self._schedule_restart(view.index)
            try:
                detail: Optional[dict] = {} if obs is not None else None
                result, _ = replica.call(batch, ctx=wire_ctx, detail=detail)
                if obs is not None:
                    obs["replica"] = index
                    obs["transport"] = replica.transport.describe()
                    obs["retries"] = len(tried)
                    obs.update(detail or {})
                return result
            except (ReplicaCrashError, ReplicaTimeoutError) as exc:
                last = exc
                tried.add(index)
                self._schedule_restart(index)
            finally:
                with self._lock:
                    replica.in_flight -= 1
        raise last  # type: ignore[misc]  # loop ran >= 1 time

    async def infer(self, batch) -> np.ndarray:
        """Awaitable :meth:`infer_sync`: pipe work runs in the executor.

        Reads the batcher's dispatch trace context *here*, on the event
        loop (contextvars do not propagate into executor threads), and
        hands it to :meth:`infer_sync` explicitly.
        """
        ctx = get_dispatch_context()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, functools.partial(self.infer_sync, batch, obs=ctx))

    def rescue_sync(self, payload) -> np.ndarray:
        """One-shot single-request dispatch to an *idle* replica.

        The hook behind :class:`~repro.serve.SLOAwarePolicy`'s shed path:
        a request about to be shed gets one chance on a replica with no
        work queued.  When every replica is busy the rescue refuses
        (:class:`NoReplicaAvailableError`) -- stealing time on a loaded
        replica would push *its* queue over the SLO too.
        """
        if self._closed:
            raise ReplicaCrashError(f"replica group {self.name!r} is closed")
        payload = np.ascontiguousarray(np.asarray(payload, dtype=float))
        with self._lock:
            idle = [view for view in self._views() if view.alive and view.in_flight == 0]
            if not idle:
                raise NoReplicaAvailableError("no idle replica to rescue the shed request")
            replica = self._by_index[min(idle, key=lambda v: (v.ewma_latency_ms, v.index)).index]
            replica.in_flight += 1
        try:
            result, _ = replica.call(payload[None])
            return result[0]
        finally:
            with self._lock:
                replica.in_flight -= 1

    async def rescue(self, payload) -> np.ndarray:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.rescue_sync, payload)

    # ------------------------------------------------------------------ #
    # Health & telemetry
    # ------------------------------------------------------------------ #
    def check_health(self, restart_dead: bool = True) -> List[bool]:
        """Ping every replica; optionally restart the ones that fail.

        Returns the per-replica liveness list *before* any restarts.
        Restarts run synchronously here (unlike the dispatch path's
        background restarts) so callers can treat a ``True``-free return
        from a second call as "the fleet is really gone".  Replicas still
        inside their restart-backoff window (or draining out of the
        fleet) are skipped.
        """
        with self._lock:
            replicas = list(self._replicas)
        health = [replica.ping() for replica in replicas]
        if restart_dead and not self._closed:
            for replica, ok in zip(replicas, health):
                if ok or self._clock() < replica.restart_not_before:
                    continue
                with self._lock:
                    # Claim the restart slot under the lock so this never
                    # races a dispatch-path background revive; a replica
                    # that has left the membership (drained out) must not
                    # be revived into a zombie.
                    if (
                        self._closed
                        or replica.index in self._restarting
                        or replica.index in self._draining
                        or replica.index not in self._by_index
                    ):
                        continue
                    self._restarting.add(replica.index)
                try:
                    # Re-probe after claiming the slot: a revive that
                    # finished since the health snapshot must not be
                    # torn down again.
                    if not replica.ping():
                        replica.restart()
                except Exception as exc:  # noqa: BLE001 - recorded for stats
                    replica.last_error = f"restart failed: {exc}"
                    replica.note_restart_failure()
                finally:
                    with self._lock:
                        self._restarting.discard(replica.index)
        return health

    def stats(self) -> List[dict]:
        """Per-replica load/latency/failure breakdown (stable order)."""
        with self._lock:
            replicas = list(self._replicas)
            draining = set(self._draining)
        return [{**replica.stats(), "draining": replica.index in draining} for replica in replicas]

    def alive_count(self) -> int:
        """Routable replicas right now (alive, not restarting, not draining)."""
        with self._lock:
            return sum(1 for view in self._views() if view.alive)

    def total_in_flight(self) -> int:
        """Fused batches currently dispatched across the whole fleet."""
        with self._lock:
            return sum(replica.in_flight for replica in self._replicas)

    def __len__(self) -> int:
        return len(self._replicas)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        alive = sum(1 for replica in list(self._replicas) if replica.alive)
        state = "closed" if self._closed else ("started" if self._started else "idle")
        return (
            f"ReplicaGroup(name={self.name!r}, replicas={len(self._replicas)}, alive={alive}, "
            f"router={self._router.name!r}, state={state!r})"
        )
