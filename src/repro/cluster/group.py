"""Replica groups: N worker processes behind one routed dispatch point.

A :class:`ReplicaGroup` owns ``replicas`` worker processes all built from
the same :class:`~repro.engine.SessionSpec`, routes each fused batch to
one of them through a pluggable :class:`~repro.cluster.router.Router`,
and keeps the fleet healthy: a worker that crashes or wedges mid-call is
restarted in the background while the batch retries on another replica
(bounded -- callers get :class:`~repro.cluster.ReplicaCrashError` rather
than a hang when the budget runs out).

The group is the *dispatch seam* the serving layer plugs into: a
:class:`~repro.serve.DynamicBatcher` hands its coalesced batch to
:meth:`infer` instead of calling the in-process session, which moves the
FFT work out of the GIL-bound server process entirely.  The group also
quacks enough like a session (``input_shape``, ``kind``, empty-batch
``run``) for the server's validation and registry plumbing to treat it
uniformly.

Thread/async-safety: :meth:`infer`/:meth:`rescue` are coroutines bound
to the caller's running loop; the blocking pipe work happens in the
default thread-pool executor.  :meth:`infer_sync` is the same dispatch
path for synchronous callers (tests, scripts).  Internal counters are
guarded by a lock; one group may serve many concurrent callers.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.errors import (
    NoReplicaAvailableError,
    ReplicaCrashError,
    ReplicaTimeoutError,
)
from repro.cluster.replica import Replica
from repro.cluster.router import ReplicaView, Router, make_router
from repro.cluster.transport import SocketTransport
from repro.engine.spec import SessionSpec

__all__ = ["ReplicaGroup"]


class ReplicaGroup:
    """N process-sharded replicas of one model behind a routing policy.

    Parameters
    ----------
    spec:
        The :class:`~repro.engine.SessionSpec` every worker builds its
        session from (``repro.engine.compile(model).to_spec()`` or
        ``SessionSpec.from_model(model, ...)``).
    replicas:
        Local worker-process count (may be 0 when ``workers`` names at
        least one remote worker).
    workers:
        Optional list of ``"host:port"`` addresses of already-running
        ``repro-worker`` processes (see :mod:`repro.cluster.remote`) to
        attach over :class:`~repro.cluster.transport.SocketTransport`.
        Remote replicas take the indices after the local ones and join
        the same routing/retry/restart machinery -- a restart is simply
        a reconnect.
    router:
        ``"round_robin"`` / ``"least_loaded"`` / ``"power_of_two_choices"``
        or a ready :class:`~repro.cluster.Router` instance (routers hold
        per-group state: one instance per group).
    max_retries:
        How many *other* replicas a batch may be retried on after a
        crash/timeout before the error propagates to callers.
    handicaps:
        Optional ``{replica_index: seconds}`` of artificial per-call
        sleep -- models asymmetric replica capacity in tests and
        benchmarks (``bench_sharded_serving.py``).
    call_timeout_s / start_timeout_s:
        Per-call answer deadline (a silent worker counts as dead) and
        worker startup handshake deadline.
    start_method:
        ``multiprocessing`` start method; ``spawn`` (default) is the one
        supported everywhere and the only one safe under threads.

    Raises
    ------
    ValueError
        For ``replicas < 0``/``max_retries < 0``, an empty fleet, or an
        unknown router.
    WorkerStartupError
        From :meth:`start` when a worker cannot build its session.
    ReplicaCrashError / ReplicaTimeoutError
        From :meth:`infer` once the retry budget is exhausted.
    NoReplicaAvailableError
        When every replica is dead (or, for :meth:`rescue`, busy).
    """

    def __init__(
        self,
        spec: SessionSpec,
        replicas: int = 2,
        router="round_robin",
        *,
        workers: Optional[List[str]] = None,
        max_retries: int = 2,
        handicaps: Optional[Dict[int, float]] = None,
        call_timeout_s: float = 60.0,
        start_timeout_s: float = 120.0,
        start_method: str = "spawn",
        name: str = "",
    ):
        workers = list(workers or [])
        if replicas < 0:
            raise ValueError("replicas must be >= 0")
        if replicas + len(workers) < 1:
            raise ValueError("need at least one replica (local or remote worker)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.spec = spec
        self.name = name or spec.model_type
        self.max_retries = int(max_retries)
        self._router: Router = make_router(router)
        handicaps = handicaps or {}
        self._replicas: List[Replica] = [
            Replica(
                spec,
                index,
                handicap_s=float(handicaps.get(index, 0.0)),
                call_timeout_s=call_timeout_s,
                start_timeout_s=start_timeout_s,
                start_method=start_method,
            )
            for index in range(int(replicas))
        ]
        for offset, address in enumerate(workers):
            index = int(replicas) + offset
            self._replicas.append(
                Replica(
                    spec,
                    index,
                    transport=SocketTransport(
                        spec,
                        address,
                        options={"handicap_s": float(handicaps.get(index, 0.0))},
                        start_timeout_s=start_timeout_s,
                    ),
                    handicap_s=float(handicaps.get(index, 0.0)),
                    call_timeout_s=call_timeout_s,
                    start_timeout_s=start_timeout_s,
                )
            )
        self._lock = threading.Lock()  # in-flight counters + restart flags
        self._restarting: set = set()
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        return self._started and not self._closed

    @property
    def router_name(self) -> str:
        return self._router.name

    def start(self) -> "ReplicaGroup":
        """Spawn all workers (concurrently) and wait for their handshakes."""
        if self._closed:
            raise RuntimeError(f"replica group {self.name!r} is closed")
        if self._started:
            return self
        pending = [replica for replica in self._replicas if not replica.alive]
        errors: List[BaseException] = []

        def boot(replica: Replica) -> None:
            try:
                replica.start()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        # Session compilation dominates startup; overlap the workers'
        # spawn+compile phases instead of paying them serially.
        threads = [threading.Thread(target=boot, args=(replica,), daemon=True) for replica in pending]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            # Tear down whatever booted, but leave the group *open*: a
            # transient startup failure (slow host missing a handshake
            # deadline) must stay retryable, not brick the group.
            for replica in self._replicas:
                replica.close()
            raise errors[0]
        self._started = True
        return self

    def close(self) -> None:
        """Stop every worker process; idempotent.

        Waits out in-flight background revives first: a restart thread
        that already claimed its slot may be mid-spawn, and tearing down
        around it would orphan the worker it is about to create.  Close
        runs after the revive finishes and reclaims whatever it spawned.
        """
        if self._closed:
            return
        self._closed = True
        self._started = False
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            with self._lock:
                if not self._restarting:
                    break
            time.sleep(0.02)
        for replica in self._replicas:
            replica.close()

    def __enter__(self) -> "ReplicaGroup":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Session-like facade (what the serving layer's plumbing touches)
    # ------------------------------------------------------------------ #
    @property
    def meta(self) -> Optional[dict]:
        for replica in self._replicas:
            if replica.meta is not None:
                return replica.meta
        return None

    @property
    def input_shape(self):
        """Per-request payload shape (known once started)."""
        meta = self.meta
        return tuple(meta["input_shape"]) if meta is not None else None

    @property
    def kind(self) -> Optional[str]:
        meta = self.meta
        return meta["kind"] if meta is not None else None

    def run(self, batch, batch_size: Optional[int] = None) -> np.ndarray:
        """Empty-batch semantics only; real traffic goes through :meth:`infer`.

        The server's ``submit_many([])`` path asks the registered session
        for the shape of "no results"; answering that needs no worker
        round-trip.  Any non-empty synchronous call is a programming
        error here -- group dispatch is asynchronous.
        """
        batch = np.asarray(batch, dtype=float)
        if len(batch) == 0:
            meta = self.meta
            if meta is None:
                raise RuntimeError(f"replica group {self.name!r} is not started")
            return np.empty((0, *meta["output_item_shape"]), dtype=np.dtype(meta["output_dtype"]))
        raise RuntimeError(
            "ReplicaGroup dispatches asynchronously: await group.infer(batch) "
            "(or use infer_sync) instead of run()"
        )

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _views(self) -> List[ReplicaView]:
        return [
            ReplicaView(
                index=replica.index,
                alive=replica.alive and replica.index not in self._restarting,
                in_flight=replica.in_flight,
                ewma_latency_ms=replica.ewma_latency_s * 1000.0,
            )
            for replica in self._replicas
        ]

    def _schedule_restart(self, index: int) -> None:
        """Restart a replica on a background thread (at most one at a time)."""
        with self._lock:
            if self._closed or index in self._restarting:
                return
            self._restarting.add(index)

        def revive() -> None:
            try:
                if not self._closed:
                    self._replicas[index].restart()
            except BaseException as exc:  # noqa: BLE001 - recorded, retried by health checks
                self._replicas[index].last_error = f"restart failed: {exc}"
            finally:
                with self._lock:
                    self._restarting.discard(index)

        threading.Thread(target=revive, name=f"repro-replica-restart-{index}", daemon=True).start()

    def infer_sync(self, batch) -> np.ndarray:
        """Route one fused batch to a replica; blocking.

        Crash/timeout failures restart the replica in the background and
        retry the batch on another one, up to ``max_retries`` times; the
        last error propagates after that.  Worker-side *request* errors
        (e.g. a malformed batch) are deterministic and propagate
        immediately without retry.
        """
        if self._closed:
            raise ReplicaCrashError(f"replica group {self.name!r} is closed")
        batch = np.ascontiguousarray(np.asarray(batch, dtype=float))
        tried: set = set()
        last: Optional[Exception] = None
        for _ in range(self.max_retries + 1):
            with self._lock:
                views = self._views()
                try:
                    index = self._router.select(views, exclude=tried)
                except NoReplicaAvailableError as exc:
                    raise last or exc from None
                replica = self._replicas[index]
                replica.in_flight += 1
            # A replica that died *between* calls never fails a dispatch,
            # so revive it opportunistically while traffic routes around it.
            for view in views:
                if not view.alive and view.index not in tried:
                    self._schedule_restart(view.index)
            try:
                result, _ = replica.call(batch)
                return result
            except (ReplicaCrashError, ReplicaTimeoutError) as exc:
                last = exc
                tried.add(index)
                self._schedule_restart(index)
            finally:
                with self._lock:
                    replica.in_flight -= 1
        raise last  # type: ignore[misc]  # loop ran >= 1 time

    async def infer(self, batch) -> np.ndarray:
        """Awaitable :meth:`infer_sync`: pipe work runs in the executor."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.infer_sync, batch)

    def rescue_sync(self, payload) -> np.ndarray:
        """One-shot single-request dispatch to an *idle* replica.

        The hook behind :class:`~repro.serve.SLOAwarePolicy`'s shed path:
        a request about to be shed gets one chance on a replica with no
        work queued.  When every replica is busy the rescue refuses
        (:class:`NoReplicaAvailableError`) -- stealing time on a loaded
        replica would push *its* queue over the SLO too.
        """
        if self._closed:
            raise ReplicaCrashError(f"replica group {self.name!r} is closed")
        payload = np.ascontiguousarray(np.asarray(payload, dtype=float))
        with self._lock:
            idle = [view for view in self._views() if view.alive and view.in_flight == 0]
            if not idle:
                raise NoReplicaAvailableError("no idle replica to rescue the shed request")
            replica = self._replicas[min(idle, key=lambda v: (v.ewma_latency_ms, v.index)).index]
            replica.in_flight += 1
        try:
            result, _ = replica.call(payload[None])
            return result[0]
        finally:
            with self._lock:
                replica.in_flight -= 1

    async def rescue(self, payload) -> np.ndarray:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.rescue_sync, payload)

    # ------------------------------------------------------------------ #
    # Health & telemetry
    # ------------------------------------------------------------------ #
    def check_health(self, restart_dead: bool = True) -> List[bool]:
        """Ping every replica; optionally restart the ones that fail.

        Returns the per-replica liveness list *before* any restarts.
        Restarts run synchronously here (unlike the dispatch path's
        background restarts) so callers can treat a ``True``-free return
        from a second call as "the fleet is really gone".
        """
        health = [replica.ping() for replica in self._replicas]
        if restart_dead and not self._closed:
            for replica, ok in zip(self._replicas, health):
                if ok:
                    continue
                with self._lock:
                    # Claim the restart slot under the lock so this never
                    # races a dispatch-path background revive.
                    if self._closed or replica.index in self._restarting:
                        continue
                    self._restarting.add(replica.index)
                try:
                    # Re-probe after claiming the slot: a revive that
                    # finished since the health snapshot must not be
                    # torn down again.
                    if not replica.ping():
                        replica.restart()
                except Exception as exc:  # noqa: BLE001 - recorded for stats
                    replica.last_error = f"restart failed: {exc}"
                finally:
                    with self._lock:
                        self._restarting.discard(replica.index)
        return health

    def stats(self) -> List[dict]:
        """Per-replica load/latency/failure breakdown (stable order)."""
        return [replica.stats() for replica in self._replicas]

    def __len__(self) -> int:
        return len(self._replicas)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        alive = sum(1 for replica in self._replicas if replica.alive)
        state = "closed" if self._closed else ("started" if self._started else "idle")
        return (
            f"ReplicaGroup(name={self.name!r}, replicas={len(self._replicas)}, alive={alive}, "
            f"router={self._router.name!r}, state={state!r})"
        )
