"""Error types of the replica-cluster layer.

Cluster failures derive from :class:`~repro.serve.ServeError` so serving
callers keep catching one base class whether a request died in the local
batcher or in a worker process.
"""

from __future__ import annotations

from repro.serve.errors import ServeError


class ClusterError(ServeError):
    """Base class for all ``repro.cluster`` errors."""


class ReplicaCrashError(ClusterError):
    """A worker process died (or its pipe broke) while serving a call.

    The group restarts the worker in the background and retries the
    batch on another replica; callers only see this error once the
    bounded retry budget is exhausted.
    """


class ReplicaTimeoutError(ClusterError):
    """A worker did not answer within the call timeout.

    A wedged worker is treated like a dead one: it is restarted and the
    call is retried elsewhere (within the retry budget).
    """


class NoReplicaAvailableError(ClusterError):
    """No alive replica is eligible for dispatch (all dead or excluded)."""


class WorkerStartupError(ClusterError):
    """A spawned worker failed to build its session from the spec."""
