"""Parent-side handle of one replica worker.

A :class:`Replica` owns everything one worker needs on the parent side:
a :class:`~repro.cluster.transport.Transport` (the spawned process +
pipe + shared-memory plumbing for :class:`LocalTransport`, a framed TCP
connection for :class:`SocketTransport`), the request sequencing, and
the telemetry the routers read (in-flight depth, EWMA wall/compute
latency, failure and restart counters).  The replica itself is
transport-agnostic: routing, retry and health semantics are identical
whether the worker is a child process on this host or a
``repro-worker`` on another one.

:meth:`call` is deliberately *blocking* -- the group runs it in the
event loop's thread-pool executor -- and serialized per replica by a
lock: one conversation, one in-order exchange.  ``in_flight``
(maintained by the group around each dispatch) therefore counts
queued-plus-running calls, which is exactly the depth signal
``least_loaded`` and ``power_of_two_choices`` balance on.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

import numpy as np

from repro.cluster.errors import ReplicaCrashError, ReplicaTimeoutError
from repro.cluster.transport import LocalTransport, Transport
from repro.engine.spec import SessionSpec

__all__ = ["Replica"]

#: How often the waiting side polls the transport (also the liveness-check cadence).
_POLL_S = 0.02


class Replica:
    """One worker conversation plus its parent-side telemetry.

    By default the replica spawns a local child process
    (:class:`~repro.cluster.transport.LocalTransport`); pass
    ``transport=SocketTransport(spec, "host:port")`` to drive a
    ``repro-worker`` on another host instead.
    """

    def __init__(
        self,
        spec: SessionSpec,
        index: int = 0,
        *,
        transport: Optional[Transport] = None,
        handicap_s: float = 0.0,
        call_timeout_s: float = 60.0,
        start_timeout_s: float = 120.0,
        ewma_alpha: float = 0.2,
        start_method: str = "spawn",
        restart_backoff_s: float = 0.5,
        restart_backoff_cap_s: float = 30.0,
        clock=None,
    ):
        if call_timeout_s <= 0 or start_timeout_s <= 0:
            raise ValueError("timeouts must be > 0")
        if restart_backoff_s <= 0 or restart_backoff_cap_s < restart_backoff_s:
            raise ValueError("restart backoff must be > 0 and the cap must be >= the base")
        self.spec = spec
        #: Monotonic time source for the restart-backoff window.  Injected
        #: by tests so backoff assertions need not sleep real wall-time;
        #: production always runs on ``time.monotonic``.
        self.clock = clock if clock is not None else time.monotonic
        self.index = int(index)
        self.handicap_s = float(handicap_s)
        self.call_timeout_s = float(call_timeout_s)
        self.start_timeout_s = float(start_timeout_s)
        self._ewma_alpha = float(ewma_alpha)
        if transport is None:
            transport = LocalTransport(
                spec,
                index=self.index,
                options={"handicap_s": self.handicap_s},
                start_timeout_s=self.start_timeout_s,
                start_method=start_method,
            )
        self.transport = transport
        self._lock = threading.Lock()  # serializes the conversation + restart
        self._ready = False
        self._seq = 0
        self.meta: Optional[dict] = None
        #: Calls currently dispatched at (or queued for) this replica;
        #: maintained by the owning group around each dispatch.
        self.in_flight = 0
        self.dispatched = 0
        self.failures = 0
        self.restarts = 0
        #: Consecutive *failed* restart attempts; a successful restart
        #: resets it.  Drives the group's capped exponential backoff so a
        #: worker that crash-loops on startup cannot respawn as fast as
        #: batches fail.
        self.restart_attempts = 0
        self.restart_backoff_s = float(restart_backoff_s)
        self.restart_backoff_cap_s = float(restart_backoff_cap_s)
        #: Monotonic instant before which another restart attempt is
        #: premature (the backoff window of the last failed attempt).
        self.restart_not_before = 0.0
        self.ewma_latency_s = 0.0
        self.ewma_compute_s = 0.0
        self.last_error: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def alive(self) -> bool:
        """Eligible for dispatch: handshaken and the conversation is up."""
        return bool(self._ready and self.transport.alive)

    @property
    def pid(self) -> Optional[int]:
        """Worker pid for locally-spawned workers; ``None`` over a socket."""
        return self.transport.pid

    def start(self) -> "Replica":
        """Bring the worker up (spawn or connect) and record its handshake."""
        with self._lock:
            if self.alive:
                return self
            self.meta = self.transport.start()
            self._ready = True
            return self

    def restart(self) -> "Replica":
        """Tear down whatever is left of the worker and bring up a fresh one."""
        with self._lock:
            self._ready = False
            self.transport.close(graceful=False)
            self.meta = self.transport.start()
            self._ready = True
            self.restarts += 1
            self.restart_attempts = 0
            self.restart_not_before = 0.0
            return self

    def note_restart_failure(self) -> float:
        """Record a failed restart attempt; returns the next backoff delay.

        The delay grows exponentially with consecutive failures
        (``restart_backoff_s * 2**(attempts-1)``), capped at
        ``restart_backoff_cap_s``; :attr:`restart_not_before` is pushed
        out accordingly so every restart path (background revive, health
        check) honours the same window.
        """
        self.restart_attempts += 1
        delay = min(
            self.restart_backoff_cap_s,
            self.restart_backoff_s * (2.0 ** (self.restart_attempts - 1)),
        )
        self.restart_not_before = self.clock() + delay
        return delay

    def close(self) -> None:
        """Stop the worker conversation (graceful ``stop``, then force)."""
        with self._lock:
            self._ready = False
            self.transport.close(graceful=True)

    # ------------------------------------------------------------------ #
    # Calls
    # ------------------------------------------------------------------ #
    def ping(self, timeout_s: float = 5.0) -> bool:
        """Round-trip liveness probe; ``False`` means dead or wedged."""
        with self._lock:
            if not self.alive:
                return False
            self._seq += 1
            seq = self._seq
            try:
                self.transport.send(("ping", seq))
                answer = self._recv_locked(time.monotonic() + timeout_s)
            except (ReplicaCrashError, ReplicaTimeoutError):
                return False
            except (BrokenPipeError, EOFError, OSError):
                self._mark_failed_locked("transport broke during ping")
                return False
            return answer[0] == "pong" and answer[1] == seq

    def call(
        self,
        batch: np.ndarray,
        timeout_s: Optional[float] = None,
        *,
        ctx: Optional[dict] = None,
        detail: Optional[dict] = None,
    ) -> "tuple[np.ndarray, float]":
        """Run one fused batch on the worker; returns ``(result, compute_s)``.

        Blocking; safe to invoke from any thread (internally serialized).

        ``ctx`` is an optional trace context rider on the ``run`` frame
        (``{"trace_ids": [...]}`` -- see :mod:`repro.obs`); a worker that
        receives one answers with its observability payload, which lands
        in ``detail`` (an out-parameter dict, filled with ``worker`` and
        ``compute_s``) so the return shape stays ``(result, compute_s)``
        for every existing caller.

        Raises :class:`ReplicaCrashError` when the worker dies or the
        transport breaks mid-call, :class:`ReplicaTimeoutError` when no
        answer arrives in time (the replica is marked unready -- the
        group restarts it), and ``RuntimeError`` for an error *answer*
        (the worker stays up; the request itself was at fault).
        """
        deadline = time.monotonic() + (timeout_s if timeout_s is not None else self.call_timeout_s)
        started = time.perf_counter()
        with self._lock:
            if not self.alive:
                raise ReplicaCrashError(f"replica {self.index} is not running")
            self._seq += 1
            seq = self._seq
            try:
                message = ("run", batch, seq) if ctx is None else ("run", batch, seq, ctx)
                self.transport.send(message)
                answer = self._recv_locked(deadline)
            except (BrokenPipeError, EOFError, OSError) as exc:
                self._mark_failed_locked(f"transport broke mid-call: {exc}")
                raise ReplicaCrashError(f"replica {self.index} transport broke mid-call") from exc
            kind = answer[0]
            if kind == "err":
                self.failures += 1
                self.last_error = str(answer[2])
                raise RuntimeError(f"replica {self.index} request failed:\n{answer[2]}")
            if kind != "ok" or answer[1] != seq:  # pragma: no cover - protocol guard
                self._mark_failed_locked(f"protocol desync (got {kind!r})")
                raise ReplicaCrashError(f"replica {self.index} answered out of order")
            result, compute_s = answer[2], answer[3]
            if detail is not None:
                detail["compute_s"] = compute_s
                if len(answer) > 4:
                    detail["worker"] = answer[4]
            wall_s = time.perf_counter() - started
            self.dispatched += 1
            alpha = self._ewma_alpha
            if self.dispatched == 1:
                self.ewma_latency_s, self.ewma_compute_s = wall_s, compute_s
            else:
                self.ewma_latency_s += alpha * (wall_s - self.ewma_latency_s)
                self.ewma_compute_s += alpha * (compute_s - self.ewma_compute_s)
            return result, compute_s

    def _recv_locked(self, deadline: float):
        while not self.transport.poll(_POLL_S):
            if not self.transport.alive:
                self._mark_failed_locked("worker died mid-call")
                raise ReplicaCrashError(f"replica {self.index} died mid-call")
            if time.monotonic() > deadline:
                # A wedged worker cannot be trusted to answer in order
                # anymore; unready it so the group restarts rather than
                # reads a stale response for the next call.
                self._mark_failed_locked("call timed out")
                raise ReplicaTimeoutError(
                    f"replica {self.index} did not answer within the call timeout"
                )
        return self.transport.recv()

    def _mark_failed_locked(self, reason: str) -> None:
        self._ready = False
        self.failures += 1
        self.last_error = reason

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Flat per-replica snapshot (``ReplicaGroup.stats()`` rows)."""
        return {
            "replica": self.index,
            "pid": self.pid,
            "transport": self.transport.describe(),
            "alive": self.alive,
            "in_flight": self.in_flight,
            "dispatched": self.dispatched,
            "failures": self.failures,
            "restarts": self.restarts,
            "restart_attempts": self.restart_attempts,
            "ewma_latency_ms": self.ewma_latency_s * 1000.0,
            "ewma_compute_ms": self.ewma_compute_s * 1000.0,
            "handicap_ms": self.handicap_s * 1000.0,
            "last_error": self.last_error,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.alive else "down"
        return (
            f"Replica(index={self.index}, transport={self.transport.describe()}, "
            f"{state}, dispatched={self.dispatched})"
        )
