"""Parent-side handle of one replica worker process.

A :class:`Replica` owns everything one worker needs on the parent side:
the spawned process, the request pipe, the outbound shared-memory arena,
the attachment cache for the worker's response arena, and the telemetry
the routers read (in-flight depth, EWMA wall/compute latency, failure and
restart counters).

:meth:`call` is deliberately *blocking* -- the group runs it in the
event loop's thread-pool executor -- and serialized per replica by a
lock: one pipe, one in-order conversation.  ``in_flight`` (maintained by
the group around each dispatch) therefore counts queued-plus-running
calls, which is exactly the depth signal ``least_loaded`` and
``power_of_two_choices`` balance on.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Optional

import numpy as np

from repro.cluster.errors import ReplicaCrashError, ReplicaTimeoutError, WorkerStartupError
from repro.cluster.shm import ShmArena, ShmReader
from repro.cluster.worker import worker_main
from repro.engine.spec import SessionSpec

__all__ = ["Replica"]

#: How often the waiting side polls the pipe (also the liveness-check cadence).
_POLL_S = 0.02


class Replica:
    """One worker process plus its parent-side plumbing and telemetry."""

    def __init__(
        self,
        spec: SessionSpec,
        index: int = 0,
        *,
        handicap_s: float = 0.0,
        call_timeout_s: float = 60.0,
        start_timeout_s: float = 120.0,
        ewma_alpha: float = 0.2,
        start_method: str = "spawn",
    ):
        if call_timeout_s <= 0 or start_timeout_s <= 0:
            raise ValueError("timeouts must be > 0")
        self.spec = spec
        self.index = int(index)
        self.handicap_s = float(handicap_s)
        self.call_timeout_s = float(call_timeout_s)
        self.start_timeout_s = float(start_timeout_s)
        self._ewma_alpha = float(ewma_alpha)
        self._ctx = multiprocessing.get_context(start_method)
        self._lock = threading.Lock()  # serializes pipe access + restart
        self._proc = None
        self._conn = None
        self._requests = ShmArena()
        self._responses = ShmReader()
        self._ready = False
        self._seq = 0
        self.meta: Optional[dict] = None
        #: Calls currently dispatched at (or queued for) this replica;
        #: maintained by the owning group around each dispatch.
        self.in_flight = 0
        self.dispatched = 0
        self.failures = 0
        self.restarts = 0
        self.ewma_latency_s = 0.0
        self.ewma_compute_s = 0.0
        self.last_error: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def alive(self) -> bool:
        """Eligible for dispatch: handshaken and the process is running."""
        return bool(self._ready and self._proc is not None and self._proc.is_alive())

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid if self._proc is not None else None

    def start(self) -> "Replica":
        """Spawn the worker and wait for its ``ready`` handshake."""
        with self._lock:
            if self.alive:
                return self
            self._spawn_locked()
            return self

    def _spawn_locked(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.spec, {"handicap_s": self.handicap_s}),
            name=f"repro-replica-{self.index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # the worker holds the only other end now
        deadline = time.monotonic() + self.start_timeout_s
        while not parent_conn.poll(_POLL_S):
            if not proc.is_alive():
                parent_conn.close()
                raise WorkerStartupError(
                    f"replica {self.index} died during startup (exit code {proc.exitcode})"
                )
            if time.monotonic() > deadline:
                proc.kill()
                parent_conn.close()
                raise WorkerStartupError(
                    f"replica {self.index} did not hand-shake within {self.start_timeout_s:g}s"
                )
        message = parent_conn.recv()
        if message[0] != "ready":
            detail = message[1] if len(message) > 1 else "?"
            parent_conn.close()
            proc.join(timeout=2.0)
            raise WorkerStartupError(f"replica {self.index} failed to build its session:\n{detail}")
        self._proc, self._conn, self.meta = proc, parent_conn, message[1]
        self._ready = True

    def restart(self) -> "Replica":
        """Tear down whatever is left of the worker and spawn a fresh one."""
        with self._lock:
            self._teardown_locked(graceful=False)
            self._spawn_locked()
            self.restarts += 1
            return self

    def close(self) -> None:
        """Stop the worker (graceful ``stop`` message, then force)."""
        with self._lock:
            self._teardown_locked(graceful=True)

    def _teardown_locked(self, graceful: bool) -> None:
        self._ready = False
        conn, self._conn = self._conn, None
        proc, self._proc = self._proc, None
        if conn is not None:
            if graceful and proc is not None and proc.is_alive():
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        if proc is not None:
            proc.join(timeout=5.0 if graceful else 0.5)
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=5.0)
            proc.close()
        # Reclaim the worker's response arena unconditionally.  Only a
        # worker that processed ``stop`` unlinks its own arena; one that
        # was already dead at close, crashed mid-call, or had to be
        # kill()ed never does -- and distinguishing those exit paths
        # reliably is not worth it when a second unlink is a harmless
        # FileNotFoundError (swallowed before any tracker message).
        self._responses.unlink_all()
        self._requests.close(unlink=True)

    # ------------------------------------------------------------------ #
    # Calls
    # ------------------------------------------------------------------ #
    def ping(self, timeout_s: float = 5.0) -> bool:
        """Round-trip liveness probe; ``False`` means dead or wedged."""
        with self._lock:
            if not self.alive:
                return False
            self._seq += 1
            seq = self._seq
            try:
                self._conn.send(("ping", seq))
                answer = self._recv_locked(time.monotonic() + timeout_s)
            except (ReplicaCrashError, ReplicaTimeoutError):
                return False
            return answer[0] == "pong" and answer[1] == seq

    def call(self, batch: np.ndarray, timeout_s: Optional[float] = None) -> "tuple[np.ndarray, float]":
        """Run one fused batch on the worker; returns ``(result, compute_s)``.

        Blocking; safe to invoke from any thread (internally serialized).

        Raises :class:`ReplicaCrashError` when the worker process dies or
        the pipe breaks mid-call, :class:`ReplicaTimeoutError` when no
        answer arrives in time (the replica is marked unready -- the
        group restarts it), and ``RuntimeError`` for an error *answer*
        (the worker stays up; the request itself was at fault).
        """
        deadline = time.monotonic() + (timeout_s if timeout_s is not None else self.call_timeout_s)
        started = time.perf_counter()
        with self._lock:
            if not self.alive:
                raise ReplicaCrashError(f"replica {self.index} is not running")
            self._seq += 1
            seq = self._seq
            try:
                ref = self._requests.write(batch)
                self._conn.send(("run", ref, seq))
                answer = self._recv_locked(deadline)
            except (BrokenPipeError, EOFError, OSError) as exc:
                self._mark_failed_locked(f"pipe broke mid-call: {exc}")
                raise ReplicaCrashError(f"replica {self.index} pipe broke mid-call") from exc
            kind = answer[0]
            if kind == "err":
                self.failures += 1
                self.last_error = str(answer[2])
                raise RuntimeError(f"replica {self.index} request failed:\n{answer[2]}")
            if kind != "ok" or answer[1] != seq:  # pragma: no cover - protocol guard
                self._mark_failed_locked(f"protocol desync (got {kind!r})")
                raise ReplicaCrashError(f"replica {self.index} answered out of order")
            _, _, out_ref, compute_s = answer
            result = self._responses.take(out_ref)
            wall_s = time.perf_counter() - started
            self.dispatched += 1
            alpha = self._ewma_alpha
            if self.dispatched == 1:
                self.ewma_latency_s, self.ewma_compute_s = wall_s, compute_s
            else:
                self.ewma_latency_s += alpha * (wall_s - self.ewma_latency_s)
                self.ewma_compute_s += alpha * (compute_s - self.ewma_compute_s)
            return result, compute_s

    def _recv_locked(self, deadline: float):
        while not self._conn.poll(_POLL_S):
            if self._proc is None or not self._proc.is_alive():
                self._mark_failed_locked("process died mid-call")
                raise ReplicaCrashError(f"replica {self.index} died mid-call")
            if time.monotonic() > deadline:
                # A wedged worker cannot be trusted to answer in order
                # anymore; unready it so the group restarts rather than
                # reads a stale response for the next call.
                self._mark_failed_locked("call timed out")
                raise ReplicaTimeoutError(
                    f"replica {self.index} did not answer within the call timeout"
                )
        return self._conn.recv()

    def _mark_failed_locked(self, reason: str) -> None:
        self._ready = False
        self.failures += 1
        self.last_error = reason

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Flat per-replica snapshot (``ReplicaGroup.stats()`` rows)."""
        return {
            "replica": self.index,
            "pid": self.pid,
            "alive": self.alive,
            "in_flight": self.in_flight,
            "dispatched": self.dispatched,
            "failures": self.failures,
            "restarts": self.restarts,
            "ewma_latency_ms": self.ewma_latency_s * 1000.0,
            "ewma_compute_ms": self.ewma_compute_s * 1000.0,
            "handicap_ms": self.handicap_s * 1000.0,
            "last_error": self.last_error,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.alive else "down"
        return f"Replica(index={self.index}, pid={self.pid}, {state}, dispatched={self.dispatched})"
