"""SLO-driven autoscaling: hold a p99 budget at minimum process count.

The routers already balance *within* a fixed fleet on in-flight depth
and EWMA latency, and the serving layer's :class:`~repro.serve.metrics`
windows already measure the p99 the fleet actually delivers -- this
module closes the loop.  An :class:`Autoscaler` periodically reads one
model's :class:`~repro.serve.BatcherStats` percentiles plus its
:class:`~repro.cluster.ReplicaGroup` depth and drives the group's
elastic primitives (:meth:`~repro.cluster.ReplicaGroup.scale_to`,
drain-before-terminate underneath) so the fleet is as small as the
latency budget allows.  The objective is the iso-metrics framing from
the asymmetric-multicore evaluation literature: maximize *iso-latency
throughput per core* -- sustained request rate under the p99 budget,
divided by worker-process count (``bench_autoscale.py`` reports it).

Control-loop shape
------------------
Plain threshold hysteresis, deliberately boring:

* **Scale up** when the windowed p99 crosses ``high_fraction * slo`` (or
  queue depth per replica exceeds ``max_inflight_per_replica``, which
  leads the latency signal under a sudden step), one replica at a time,
  never past ``max_replicas``, and never twice within ``up_cooldown_s``.
* **Scale down** when the p99 sits below ``low_fraction * slo`` *and*
  the remaining fleet could absorb the current in-flight depth, never
  below ``min_replicas``, and never twice within ``down_cooldown_s``.
  The gap between the two fractions is the hysteresis band that keeps
  a borderline fleet from flapping.
* **Hold** otherwise -- and *always* hold while the percentile window
  is cold (NaN percentiles carry no information; a cold window must
  never trigger a membership change) or while fewer than
  ``min_samples`` requests completed since the last action (a window
  still dominated by pre-action traffic would re-trigger on stale
  evidence).
* **Idle**: with ``idle_timeout_s`` set, a model with no traffic at all
  shrinks straight to ``min_replicas`` and is demoted to the front of
  the LRU line in a capacity-bounded
  :class:`~repro.serve.SessionRegistry` (the next capacity eviction
  takes the idle model first, not a hot one).

Every decision -- including the reason for holding -- is observable via
:meth:`Autoscaler.snapshot`, which ``InferenceServer.stats()`` and
``GET /v1/stats`` attach per model.

Thread-safety: :meth:`Autoscaler.step` is designed to be called from a
single periodic driver (the server runs it in the event loop's executor;
membership changes block for spawn/drain time).  :meth:`snapshot` is
safe from any thread.
"""

from __future__ import annotations

import logging
import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.obs.log import get_logger as _obs_logger

__all__ = ["AutoscaleConfig", "Autoscaler", "Decision"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class Decision:
    """One evaluation of the control loop (returned by :meth:`Autoscaler.evaluate`).

    ``action`` is ``"up"``/``"down"``/``"hold"``; ``target`` the fleet
    size the action aims for (current size for holds); ``reason`` a
    short machine-stable tag (``"p99-over-budget"``, ``"cold-window"``,
    ``"up-cooldown"``, ``"at-max-fleet"``, ``"idle"``, ...).
    """

    action: str
    target: int
    reason: str
    p99_ms: float
    fleet: int
    in_flight: int

    def as_dict(self) -> dict:
        """JSON-friendly row (NaN p99 becomes ``None``, never NaN)."""
        return {
            "action": self.action,
            "target": self.target,
            "reason": self.reason,
            "p99_ms": None if math.isnan(self.p99_ms) else float(self.p99_ms),
            "fleet": self.fleet,
            "in_flight": self.in_flight,
        }


@dataclass
class AutoscaleConfig:
    """Tuning for one model's autoscaler.

    Parameters
    ----------
    slo_p99_ms:
        The latency budget the loop defends: windowed p99 of end-to-end
        request latency, milliseconds.
    min_replicas / max_replicas:
        Fleet bounds.  The loop never shrinks below the floor (even
        idle) and never grows past the cap (the "at-max-fleet" hold is
        visible in the decision history instead).
    interval_s:
        How often the server's driver task calls :meth:`Autoscaler.step`.
    high_fraction / low_fraction:
        Hysteresis thresholds as fractions of the budget: scale up at
        ``p99 >= high_fraction * slo``, consider scaling down only at
        ``p99 <= low_fraction * slo``.  The band between them is where a
        correctly-sized fleet rests.
    up_cooldown_s / down_cooldown_s:
        Minimum spacing between consecutive same-direction actions, so
        one burst cannot ratchet the fleet to the cap before the first
        new replica has absorbed anything.  Down is typically the larger
        of the two: shrinking too eagerly costs a re-spawn.
    min_samples:
        Requests that must complete *after* an action before the next
        one -- the freshness gate that keeps stale window samples from
        re-triggering.
    max_inflight_per_replica:
        Queue-depth trip-wire: mean dispatched-batch depth per replica
        above this scales up even before the latency window catches up,
        and a scale-down is vetoed unless the remaining fleet could
        absorb the current depth under this bound.
    idle_timeout_s:
        With no completed traffic for this long, shrink to
        ``min_replicas`` and demote the model in a capacity-bounded
        registry (LRU idle eviction).  ``None`` (default) disables the
        idle path.
    stats_window:
        Percentile-window capacity the server configures the model's
        batcher with (smaller than the monitoring default so post-action
        traffic displaces stale samples quickly).
    history:
        Bounded decision-history length kept for :meth:`Autoscaler.snapshot`.
    """

    slo_p99_ms: float
    min_replicas: int = 1
    max_replicas: int = 4
    interval_s: float = 0.25
    high_fraction: float = 0.9
    low_fraction: float = 0.5
    up_cooldown_s: float = 1.0
    down_cooldown_s: float = 5.0
    min_samples: int = 20
    max_inflight_per_replica: float = 3.0
    idle_timeout_s: Optional[float] = None
    stats_window: int = 256
    history: int = 64

    def __post_init__(self) -> None:
        if self.slo_p99_ms <= 0:
            raise ValueError("slo_p99_ms must be > 0")
        if self.min_replicas < 1 or self.max_replicas < self.min_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if not (0.0 < self.low_fraction < self.high_fraction):
            raise ValueError("need 0 < low_fraction < high_fraction (the hysteresis band)")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if self.up_cooldown_s < 0 or self.down_cooldown_s < 0:
            raise ValueError("cooldowns must be >= 0")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.max_inflight_per_replica <= 0:
            raise ValueError("max_inflight_per_replica must be > 0")
        if self.idle_timeout_s is not None and self.idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be > 0 (or None to disable)")
        if self.stats_window < 1 or self.history < 1:
            raise ValueError("stats_window and history must be >= 1")

    @classmethod
    def from_options(cls, options) -> "AutoscaleConfig":
        """Coerce ``InferenceServer(autoscale=...)`` input: config or kwargs dict."""
        if isinstance(options, cls):
            return options
        if isinstance(options, dict):
            return cls(**options)
        raise TypeError(
            f"autoscale must be an AutoscaleConfig or a kwargs dict "
            f"(e.g. {{'slo_p99_ms': 50}}), got {type(options).__name__}"
        )


class Autoscaler:
    """The control loop for one model: stats in, membership changes out.

    Parameters
    ----------
    group:
        The :class:`~repro.cluster.ReplicaGroup` to resize (anything with
        ``__len__``, ``total_in_flight()``, ``alive_count()`` and
        ``scale_to()`` works -- tests drive fakes through the same seam).
    stats:
        The model's :class:`~repro.serve.BatcherStats` (needs
        ``p99_latency_ms`` and ``completed``).
    config:
        An :class:`AutoscaleConfig`.
    registry / model:
        Optional :class:`~repro.serve.SessionRegistry` + model name for
        the idle-demotion path; ignored unless the registry is
        capacity-bounded and ``idle_timeout_s`` is set.
    clock:
        Monotonic time source for cooldown/idle bookkeeping when
        :meth:`evaluate`/:meth:`step` are called without an explicit
        ``now``.  Tests inject a fake so cooldown assertions advance
        virtual time instead of sleeping; production runs on
        ``time.monotonic``.
    """

    def __init__(
        self,
        group,
        stats,
        config: AutoscaleConfig,
        *,
        registry=None,
        model: Optional[str] = None,
        clock=None,
    ):
        self.group = group
        self.stats = stats
        self.config = config
        self.model = model or getattr(group, "name", "model")
        self._registry = registry
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._last_up_at: Optional[float] = None
        self._last_down_at: Optional[float] = None
        self._completed_at_action = 0
        self._last_completed = 0
        self._last_traffic_at: Optional[float] = None
        self._idle_handled = False
        self.scale_ups = 0
        self.scale_downs = 0
        self.holds = 0
        self.nan_holds = 0
        self.idle_demotions = 0
        self.errors = 0
        self._decisions: "deque[dict]" = deque(maxlen=config.history)
        self._last_decision: Optional[Decision] = None

    # ------------------------------------------------------------------ #
    # Decision function (pure read of group + stats; no membership change)
    # ------------------------------------------------------------------ #
    def evaluate(self, now: Optional[float] = None) -> Decision:
        """One pass of the control law; returns what :meth:`step` would do.

        Reads telemetry and updates idle bookkeeping but never touches
        the fleet, so tests can drive the law directly against fakes.
        """
        now = self._clock() if now is None else now
        cfg = self.config
        fleet = len(self.group)
        in_flight = int(self.group.total_in_flight())
        completed = int(self.stats.completed)
        p99 = float(self.stats.p99_latency_ms)

        # Idle bookkeeping: any completion or live dispatch counts as traffic.
        if self._last_traffic_at is None:
            self._last_traffic_at = now
        if completed != self._last_completed or in_flight > 0:
            self._last_completed = completed
            self._last_traffic_at = now
            self._idle_handled = False

        def decision(action: str, target: int, reason: str) -> Decision:
            return Decision(action, target, reason, p99, fleet, in_flight)

        # Idle path first: it must fire even on a cold window (a model
        # that never saw traffic will never fill it) and bypasses the
        # freshness gate (no traffic will ever provide fresh samples).
        if (
            cfg.idle_timeout_s is not None
            and now - self._last_traffic_at >= cfg.idle_timeout_s
            and not self._idle_handled
        ):
            if fleet > cfg.min_replicas:
                return decision("down", cfg.min_replicas, "idle")
            return decision("hold", fleet, "idle")

        # NaN guard: a cold percentile window carries no information --
        # no scaling action until it has samples.
        if math.isnan(p99):
            return decision("hold", fleet, "cold-window")

        # Freshness gate: stale window samples from before the last
        # membership change must not re-trigger it.
        if completed - self._completed_at_action < cfg.min_samples:
            return decision("hold", fleet, "awaiting-samples")

        depth_per_replica = in_flight / max(1, fleet)
        over_latency = p99 >= cfg.high_fraction * cfg.slo_p99_ms
        over_depth = depth_per_replica >= cfg.max_inflight_per_replica
        if over_latency or over_depth:
            if fleet >= cfg.max_replicas:
                return decision("hold", fleet, "at-max-fleet")
            if self._last_up_at is not None and now - self._last_up_at < cfg.up_cooldown_s:
                return decision("hold", fleet, "up-cooldown")
            return decision("up", fleet + 1, "p99-over-budget" if over_latency else "queue-depth")

        # Shrink only when comfortably inside the budget *and* the
        # remaining fleet could absorb today's depth under the trip-wire.
        relaxed = p99 <= cfg.low_fraction * cfg.slo_p99_ms
        absorbable = (fleet - 1) * cfg.max_inflight_per_replica >= in_flight
        if relaxed and absorbable:
            if fleet <= cfg.min_replicas:
                return decision("hold", fleet, "at-min-fleet")
            if self._last_down_at is not None and now - self._last_down_at < cfg.down_cooldown_s:
                return decision("hold", fleet, "down-cooldown")
            return decision("down", fleet - 1, "p99-under-budget")

        return decision("hold", fleet, "in-band")

    # ------------------------------------------------------------------ #
    # Acting
    # ------------------------------------------------------------------ #
    def step(self, now: Optional[float] = None) -> Decision:
        """Evaluate and *apply*: resize the fleet / demote idle models.

        Membership changes run synchronously (spawn/drain time), so call
        this off the event loop -- ``InferenceServer`` drives it from an
        executor task every ``config.interval_s``.  A failed resize is
        logged and counted (``errors``), never raised: the control loop
        must outlive one bad spawn.
        """
        now = self._clock() if now is None else now
        verdict = self.evaluate(now)
        if verdict.action == "up":
            self._resize(verdict, now)
        elif verdict.action == "down":
            self._resize(verdict, now)
        else:
            with self._lock:
                self.holds += 1
                if verdict.reason == "cold-window":
                    self.nan_holds += 1
        if verdict.reason == "idle" and not self._idle_handled:
            self._idle_handled = True
            self._demote_idle()
        self._record(verdict, now)
        return verdict

    def _resize(self, verdict: Decision, now: float) -> None:
        try:
            self.group.scale_to(verdict.target)
        except Exception as exc:  # noqa: BLE001 - loop must survive a bad spawn
            with self._lock:
                self.errors += 1
            logger.warning(
                "autoscaler %r: scale_to(%d) failed (%s); holding at %d",
                self.model,
                verdict.target,
                exc,
                len(self.group),
            )
            _obs_logger().warning(
                "autoscale.resize_failed",
                model=self.model,
                target=verdict.target,
                error=str(exc),
                fleet=len(self.group),
            )
        else:
            with self._lock:
                if verdict.action == "up":
                    self.scale_ups += 1
                else:
                    self.scale_downs += 1
            logger.info(
                "autoscaler %r: scaled %s to %d replicas (%s, p99=%.1fms, in_flight=%d)",
                self.model,
                verdict.action,
                verdict.target,
                verdict.reason,
                verdict.p99_ms,
                verdict.in_flight,
            )
            _obs_logger().info(
                "autoscale.scaled",
                model=self.model,
                action=verdict.action,
                target=verdict.target,
                reason=verdict.reason,
                p99_ms=verdict.p99_ms,
                in_flight=verdict.in_flight,
            )
        # Cooldowns and the freshness gate restart even on failure: an
        # immediate retry of a failing spawn is exactly the crash-loop
        # shape the replica-level restart backoff exists to prevent.
        if verdict.action == "up":
            self._last_up_at = now
        else:
            self._last_down_at = now
        self._completed_at_action = int(self.stats.completed)

    def _demote_idle(self) -> None:
        registry = self._registry
        if (
            registry is None
            or getattr(registry, "max_models", None) is None
            or self.model not in registry
        ):
            return
        try:
            registry.demote(self.model)
        except Exception as exc:  # noqa: BLE001 - demotion is advisory
            logger.warning("autoscaler %r: idle demotion failed (%s)", self.model, exc)
            _obs_logger().warning("autoscale.demote_failed", model=self.model, error=str(exc))
        else:
            with self._lock:
                self.idle_demotions += 1
            logger.info(
                "autoscaler %r: idle for >= %.1fs; demoted to LRU eviction front",
                self.model,
                self.config.idle_timeout_s,
            )
            _obs_logger().info(
                "autoscale.idle_demoted",
                model=self.model,
                idle_timeout_s=self.config.idle_timeout_s,
            )

    def _record(self, verdict: Decision, now: float) -> None:
        with self._lock:
            previous = self._last_decision
            self._last_decision = verdict
            # Actions always enter the history; holds only when the
            # *reason* changes, so the bounded log reads as a sequence of
            # state transitions rather than one repeated line per tick.
            if verdict.action == "hold" and previous is not None and previous.reason == verdict.reason:
                return
            self._decisions.append({"t": now, **verdict.as_dict()})

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """JSON-friendly state: config, counters, decision history.

        This is what ``InferenceServer.stats()`` attaches as
        ``BatcherStats.autoscaler`` and the gateway serves under
        ``GET /v1/stats`` -- finite numbers or ``None`` only, never NaN.
        """
        cfg = self.config
        with self._lock:
            last = self._last_decision
            return {
                "model": self.model,
                "fleet": len(self.group),
                "alive": int(self.group.alive_count()),
                "in_flight": int(self.group.total_in_flight()),
                "scale_ups": self.scale_ups,
                "scale_downs": self.scale_downs,
                "holds": self.holds,
                "nan_holds": self.nan_holds,
                "idle_demotions": self.idle_demotions,
                "errors": self.errors,
                "last_decision": last.as_dict() if last is not None else None,
                "decisions": list(self._decisions),
                "config": {
                    "slo_p99_ms": cfg.slo_p99_ms,
                    "min_replicas": cfg.min_replicas,
                    "max_replicas": cfg.max_replicas,
                    "interval_s": cfg.interval_s,
                    "high_fraction": cfg.high_fraction,
                    "low_fraction": cfg.low_fraction,
                    "up_cooldown_s": cfg.up_cooldown_s,
                    "down_cooldown_s": cfg.down_cooldown_s,
                    "min_samples": cfg.min_samples,
                    "max_inflight_per_replica": cfg.max_inflight_per_replica,
                    "idle_timeout_s": cfg.idle_timeout_s,
                },
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Autoscaler(model={self.model!r}, fleet={len(self.group)}, "
            f"ups={self.scale_ups}, downs={self.scale_downs})"
        )
