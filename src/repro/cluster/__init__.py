"""``repro.cluster``: process-sharded replica groups under the serving layer.

The serving stack (``repro.serve``) batches beautifully but computes in
one Python process: however many cores the host has, every fused FFT
call of every model funnels through one GIL.  This package adds the
execution tier below it:

* :class:`~repro.cluster.replica.Replica` / ``worker_main`` -- one
  ``multiprocessing`` (spawn) child that rebuilds an
  :class:`~repro.engine.InferenceSession` from a picklable
  :class:`~repro.engine.SessionSpec` and serves fused batch calls over a
  pipe, with batch arrays moved through ``multiprocessing.shared_memory``
  (:mod:`repro.cluster.shm`) instead of being pickled.
* Transports -- the worker conversation is pinned behind the
  :class:`~repro.cluster.transport.Transport` interface:
  :class:`LocalTransport` is the pipe+shm child-process path above, and
  :class:`SocketTransport` speaks the same message schema over
  length-prefixed TCP frames to a ``repro-worker``
  (:mod:`repro.cluster.remote`) running on any host --
  ``ReplicaGroup(spec, replicas=0, workers=["host:7070"])``.
* :class:`ReplicaGroup` -- owns N such workers for one model,
  health-checks and restarts dead ones, retries failed batches on
  another replica (bounded), and exposes an awaitable ``infer(batch)``
  plus per-replica ``stats()``.
* Routers -- :class:`RoundRobinRouter`, :class:`LeastLoadedRouter`,
  :class:`PowerOfTwoChoicesRouter` (:func:`make_router` by name): where
  the next batch goes, using per-replica in-flight depth and EWMA
  latency so asymmetric replicas are not fed equal shares.
* :class:`Autoscaler` / :class:`AutoscaleConfig`
  (:mod:`repro.cluster.autoscale`) -- the elastic control loop: reads
  the serving layer's p99 windows and the fleet's in-flight depth and
  drives ``ReplicaGroup.scale_to`` (drain-before-terminate) to hold a
  latency budget at minimum process count, with hysteresis, cooldowns
  and a max-fleet cap.  ``InferenceServer(autoscale=...)`` wires it up;
  see ``docs/autoscaling.md``.

``repro.serve.InferenceServer(replicas=N, router=...)`` wires all of
this under its dynamic batchers; see ``docs/sharding.md`` for the guide
and ``benchmarks/bench_sharded_serving.py`` for measured numbers.
"""

from repro.cluster.autoscale import AutoscaleConfig, Autoscaler, Decision
from repro.cluster.errors import (
    ClusterError,
    NoReplicaAvailableError,
    ReplicaCrashError,
    ReplicaTimeoutError,
    WorkerStartupError,
)
from repro.cluster.group import ReplicaGroup
from repro.cluster.replica import Replica
from repro.cluster.router import (
    LeastLoadedRouter,
    PowerOfTwoChoicesRouter,
    ReplicaView,
    RoundRobinRouter,
    Router,
    make_router,
)
from repro.cluster.remote import WorkerServer
from repro.cluster.shm import ShmArena, ShmReader
from repro.cluster.transport import LocalTransport, SocketTransport, Transport
from repro.cluster.worker import worker_main

__all__ = [
    "ReplicaGroup",
    "Replica",
    "Autoscaler",
    "AutoscaleConfig",
    "Decision",
    "worker_main",
    "Transport",
    "LocalTransport",
    "SocketTransport",
    "WorkerServer",
    "Router",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "PowerOfTwoChoicesRouter",
    "ReplicaView",
    "make_router",
    "ShmArena",
    "ShmReader",
    "ClusterError",
    "ReplicaCrashError",
    "ReplicaTimeoutError",
    "NoReplicaAvailableError",
    "WorkerStartupError",
]
