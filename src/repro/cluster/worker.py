"""The replica worker: a spawned child process serving fused batch calls.

Each worker rebuilds an :class:`~repro.engine.InferenceSession` from a
picklable :class:`~repro.engine.SessionSpec` (its *own* compiled program,
kernel caches and FFT plans, in its own address space -- this is what
frees a replica group from the parent's GIL), then answers a tiny
request/response protocol over a pipe:

============================  ===========================================
parent -> worker              worker -> parent
============================  ===========================================
``("run", ref, seq[, ctx])``  ``("ok", seq, ref, compute_s[, obs])`` or
                              ``("err", seq, message)``
``("ping", seq)``             ``("pong", seq)``
``("stop",)``                 (exits after cleanup)
============================  ===========================================

A ``run`` carrying a trace context ``ctx`` (the request is traced --
see :mod:`repro.obs`) gets an ``ok`` carrying :func:`worker_obs`: the
worker's pid and compute duration, which the parent stitches into the
request's trace as a ``worker.compute`` span.

plus a one-shot ``("ready", meta)`` / ``("fatal", message)`` handshake
after the session is built.  ``ref`` descriptors are
:data:`~repro.cluster.shm.ArrayRef` tuples -- the batch arrays themselves
move through shared memory (:mod:`repro.cluster.shm`), never through the
pipe.

A per-request failure answers ``("err", ...)`` and the worker lives on;
only a broken pipe (parent gone) or ``stop`` ends the loop.  The
``handicap_s`` option adds a fixed sleep to every call: a deliberately
slowed replica for asymmetric-capacity tests and benchmarks (see
``benchmarks/bench_sharded_serving.py``).
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from typing import Optional

import numpy as np

from repro.cluster.shm import ShmArena, ShmReader
from repro.engine.spec import SessionSpec

__all__ = ["worker_main", "probe_session", "run_batch", "worker_obs"]


def worker_obs(compute_s: float, handicap_s: float = 0.0) -> dict:
    """The observability payload a traced ``ok`` reply carries.

    Durations only -- ``time.monotonic``/``perf_counter`` instants are
    process-local and meaningless to the parent, which anchors the
    stitched ``worker.compute`` span inside its own dispatch window.
    Shared by both worker flavors (pipe+shm child and socket server).
    """
    obs = {"pid": os.getpid(), "compute_ms": compute_s * 1000.0}
    if handicap_s > 0.0:
        obs["handicap_ms"] = handicap_s * 1000.0
    return obs


def probe_session(session) -> dict:
    """Session metadata for the startup handshake.

    Runs one zero-image batch so the parent learns the per-item output
    shape (needed for empty-batch semantics and stats) -- which also
    warms the worker's FFT plan and kernel caches before traffic lands.
    """
    input_shape = tuple(session.input_shape)
    warm = session.run(np.zeros((1,) + input_shape))
    return {
        "kind": session.kind,
        "backend": session.backend_name,
        "dtype": session.dtype.name,
        "input_shape": input_shape,
        "output_item_shape": tuple(warm.shape[1:]),
        "output_dtype": warm.dtype.str,
    }


def run_batch(session, batch: np.ndarray, handicap_s: float = 0.0):
    """One fused call: ``(result, compute_s)`` -- the worker-side hot path.

    Shared by both worker flavors (the pipe+shm child here and the
    socket-serving :mod:`repro.cluster.remote`) so the measured
    ``compute_s`` and handicap semantics stay identical across
    transports.
    """
    started = time.perf_counter()
    result = session.run(batch, batch_size=len(batch) or None)
    compute_s = time.perf_counter() - started
    if handicap_s > 0.0:
        time.sleep(handicap_s)
    return np.asarray(result), compute_s


def worker_main(conn, spec: SessionSpec, options: Optional[dict] = None) -> None:
    """Entry point of one replica worker process (``spawn`` start method).

    ``conn`` is the worker end of a ``multiprocessing.Pipe``; ``options``
    currently understands ``handicap_s`` (artificial per-call sleep,
    seconds).  Never raises: startup failures are reported as
    ``("fatal", message)`` and per-request failures as ``("err", ...)``.
    """
    options = options or {}
    handicap_s = float(options.get("handicap_s") or 0.0)
    # The parent owns worker lifetime (stop message / terminate): a
    # keyboard interrupt aimed at the parent must not race its shutdown.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread / platform
        pass

    try:
        session = spec.build()
        meta = probe_session(session)
    except Exception:
        try:
            conn.send(("fatal", traceback.format_exc(limit=8)))
        finally:
            conn.close()
        return
    conn.send(("ready", meta))

    requests = ShmReader()   # parent-owned request arena
    responses = ShmArena()   # worker-owned response arena
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return  # parent is gone; nothing left to answer
            kind = message[0]
            if kind == "stop":
                return
            if kind == "ping":
                conn.send(("pong", message[1]))
                continue
            if kind != "run":  # pragma: no cover - protocol guard
                conn.send(("err", message[1] if len(message) > 1 else -1, f"unknown message {kind!r}"))
                continue
            ref, seq = message[1], message[2]
            ctx = message[3] if len(message) > 3 else None
            try:
                # The view aliases the parent's arena; the session copies
                # during encoding, and the parent will not overwrite the
                # block before it has our response.
                batch = requests.view(ref)
                result, compute_s = run_batch(session, batch, handicap_s)
                out_ref = responses.write(result)
            except Exception:
                conn.send(("err", seq, traceback.format_exc(limit=8)))
                continue
            if ctx is not None:
                # Traced request: ship the compute timing back so the
                # parent can stitch a worker.compute span into the trace
                # (clocks do not align across processes, so durations
                # travel, not instants).
                conn.send(("ok", seq, out_ref, compute_s, worker_obs(compute_s, handicap_s)))
            else:
                conn.send(("ok", seq, out_ref, compute_s))
            # The view from this iteration must not outlive the message:
            # a lingering reference pins the parent's arena mmap and
            # turns the shutdown close into a BufferError.
            del batch
    finally:
        requests.close()
        responses.close(unlink=True)
        conn.close()
