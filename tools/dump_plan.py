"""Dump a model's engine plan before and after the optimization passes.

A debugging/teaching lens on the ``repro.engine`` compile pipeline
(``docs/engine.md``): builds a DONN from CLI parameters, lowers it to the
plan IR, runs ``optimize_plan`` at the requested level, and prints both
op listings plus the pass report.

Run from the repo root::

    PYTHONPATH=src python tools/dump_plan.py --sys-size 32 --num-layers 3
    PYTHONPATH=src python tools/dump_plan.py --nonlinearity saturable --optimize fuse

The printing logic lives in :func:`repro.engine.plan.format_plan` /
:func:`dump_plan` here, so docs doctests and tests can call it without a
subprocess.
"""

from __future__ import annotations

import argparse

from repro.engine import get_fft_backend, optimize_plan
from repro.engine.plan import count_ops, format_plan, lower
from repro.models.config import DONNConfig
from repro.models.donn import DONN


def dump_plan(model, optimize: str = "full", dtype: str = "complex128", backend: str = "auto") -> str:
    """Lowered and optimized plan listings for ``model``, as one string."""
    fft = get_fft_backend(backend)
    raw = lower(model, dtype)
    optimized, report = optimize_plan(raw, optimize, fft=fft)
    lines = [
        f"plan for {type(model).__name__} (kind={raw.kind}, grid={raw.grid.size}x{raw.grid.size}, "
        f"dtype={raw.cdtype.name})",
        "",
        f"before passes ({sum(count_ops(raw).values())} ops):",
        format_plan(raw, indent="  "),
        "",
        f"after optimize={optimize!r} ({sum(count_ops(optimized).values())} ops):",
        format_plan(optimized, indent="  "),
        "",
        f"passes applied: {', '.join(report['passes']) or '(none)'}",
        f"FFT ops: {report['fft_ops_before']} -> {report['fft_ops_after']}"
        + ("  [cascade collapsed to precomputed operator]" if report["collapsed"] else ""),
    ]
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sys-size", type=int, default=32)
    parser.add_argument("--num-layers", type=int, default=3)
    parser.add_argument("--num-classes", type=int, default=10)
    parser.add_argument("--approx", default="rayleigh_sommerfeld")
    parser.add_argument("--pad-factor", type=int, default=1)
    parser.add_argument("--nonlinearity", default=None, choices=(None, "saturable", "kerr"))
    parser.add_argument("--optimize", default="full", choices=("none", "fuse", "full"))
    parser.add_argument("--dtype", default="complex128", choices=("complex64", "complex128"))
    parser.add_argument("--backend", default="auto")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = DONNConfig(
        sys_size=args.sys_size,
        pixel_size=36e-6,
        distance=0.1,
        wavelength=532e-9,
        num_layers=args.num_layers,
        num_classes=args.num_classes,
        approx=args.approx,
        pad_factor=args.pad_factor,
        seed=args.seed,
    )
    model = DONN(config, nonlinearity=args.nonlinearity)
    print(dump_plan(model, optimize=args.optimize, dtype=args.dtype, backend=args.backend))


if __name__ == "__main__":
    main()
