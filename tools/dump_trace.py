"""Render one request trace as an aligned per-hop waterfall.

A terminal lens on ``repro.obs`` traces (``docs/observability.md``):
takes the frozen-trace JSON that ``GET /v1/traces/{id}`` answers --
either fetched live from a running gateway or read from a file -- and
prints each span as a bar positioned on the request's timeline, so the
split between gateway codec, queue wait, dispatch and worker compute is
visible at a glance::

    trace 8f3a...  (request, 61.42 ms, finished)
    request           |##################################################|  61.42 ms
    gateway.decode    |#                                                 |   0.31 ms  model=donn items=1
    serve.queue       | ##                                               |   1.84 ms  model=donn outcome=batched
    serve.batch       |   ###############################################|  58.90 ms  batch_size=2
    serve.dispatch    |   ###############################################|  58.88 ms  replica=0 transport=socket(...)
    worker.compute    |                                    ##############|  52.10 ms  compute_ms=52.1
    gateway.encode    |                                                 #|   0.12 ms

Run from the repo root::

    PYTHONPATH=src python tools/dump_trace.py --url http://127.0.0.1:8080 --trace-id <id>
    PYTHONPATH=src python tools/dump_trace.py --url http://127.0.0.1:8080 --slowest
    PYTHONPATH=src python tools/dump_trace.py --file trace.json

The formatting logic lives in :func:`format_trace`, so docs doctests and
tests can call it on a frozen-trace dict without a subprocess or a live
gateway.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request
from typing import List

#: Width of the timeline gutter, in characters.
DEFAULT_WIDTH = 50


def format_trace(frozen: dict, width: int = DEFAULT_WIDTH) -> str:
    """The aligned waterfall for one frozen trace (``GET /v1/traces/{id}`` body)."""
    spans = frozen.get("spans", [])
    total_ms = float(frozen.get("duration_ms") or 0.0)
    if total_ms <= 0.0:
        total_ms = max(
            (float(s.get("start_ms", 0.0)) + float(s.get("duration_ms") or 0.0) for s in spans),
            default=1.0,
        )
    state = "finished" if frozen.get("finished") else "open"
    header = (
        f"trace {frozen.get('trace_id', '?')}  "
        f"({frozen.get('name', 'request')}, {total_ms:.2f} ms, {state})"
    )
    lines: List[str] = [header]
    if frozen.get("error"):
        lines.append(f"error: {frozen['error']}")
    if frozen.get("dropped_spans"):
        lines.append(f"dropped spans: {frozen['dropped_spans']}")

    name_width = max((len(s.get("name", "?")) for s in spans), default=4)
    scale = width / total_ms if total_ms > 0 else 0.0
    for span in spans:
        start_ms = float(span.get("start_ms", 0.0))
        duration_ms = float(span.get("duration_ms") or 0.0)
        left = min(width - 1, max(0, int(round(start_ms * scale))))
        bar_len = max(1, min(int(round(duration_ms * scale)), width - left))
        gutter = (" " * left + "#" * bar_len).ljust(width)
        attrs = span.get("attrs") or {}
        attr_text = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
        line = f"{span.get('name', '?'):<{name_width}}  |{gutter}|  {duration_ms:>8.2f} ms"
        if attr_text:
            line += f"  {attr_text}"
        lines.append(line)
    return "\n".join(lines)


def fetch_trace(base_url: str, trace_id: str, timeout_s: float = 10.0) -> dict:
    """``GET {base_url}/v1/traces/{trace_id}`` -> the frozen-trace dict."""
    url = f"{base_url.rstrip('/')}/v1/traces/{trace_id}"
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return json.loads(response.read().decode("utf-8"))


def fetch_slowest(base_url: str, n: int = 1, timeout_s: float = 10.0) -> List[dict]:
    """``GET {base_url}/v1/traces?slow=N`` -> the N worst frozen traces."""
    url = f"{base_url.rstrip('/')}/v1/traces?slow={int(n)}"
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return json.loads(response.read().decode("utf-8"))["traces"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--file", help="path to a frozen-trace JSON file ('-' for stdin)")
    source.add_argument("--url", help="base URL of a running gateway, e.g. http://127.0.0.1:8080")
    parser.add_argument("--trace-id", help="request id to fetch (with --url)")
    parser.add_argument(
        "--slowest",
        nargs="?",
        const=1,
        type=int,
        metavar="N",
        help="fetch the N slowest retained traces instead of one id (with --url)",
    )
    parser.add_argument("--width", type=int, default=DEFAULT_WIDTH, help="timeline width in chars")
    args = parser.parse_args()

    if args.file:
        blob = sys.stdin.read() if args.file == "-" else open(args.file, encoding="utf-8").read()
        parsed = json.loads(blob)
        traces = parsed if isinstance(parsed, list) else parsed.get("traces", [parsed])
        if isinstance(traces, dict):
            traces = [traces]
    else:
        if args.slowest is None and not args.trace_id:
            parser.error("--url needs --trace-id or --slowest")
        try:
            if args.slowest is not None:
                traces = fetch_slowest(args.url, args.slowest)
            else:
                traces = [fetch_trace(args.url, args.trace_id)]
        except urllib.error.HTTPError as error:
            print(f"gateway answered {error.code}: {error.read().decode('utf-8', 'replace')}")
            return 1
        except urllib.error.URLError as error:
            print(f"cannot reach {args.url}: {error.reason}")
            return 1

    if not traces:
        print("no traces retained (has any traffic run with sampling on?)")
        return 1
    for index, frozen in enumerate(traces):
        if index:
            print()
        print(format_trace(frozen, width=args.width))
    return 0


if __name__ == "__main__":
    sys.exit(main())
