"""Inspect a model store from the command line: models, versions, manifests.

The operator's lens on ``repro.store`` (``docs/model_store.md``): point it
at a store root and it prints the catalogue -- every model name, every
version with its content hash, dtype, optimize level and publish
timestamp -- or, with ``--verify``, re-hashes every blob against its
manifest so silent on-disk corruption is caught before a replica
cold-starts from it.

Run from the repo root::

    PYTHONPATH=src python tools/dump_store.py /var/lib/repro-store
    PYTHONPATH=src python tools/dump_store.py /var/lib/repro-store --model digits
    PYTHONPATH=src python tools/dump_store.py /var/lib/repro-store --verify

The formatting logic lives in :func:`dump_store`, so docs doctests and
tests can call it without a subprocess.
"""

from __future__ import annotations

import argparse

from repro.store import ModelStore, StoreIntegrityError


def dump_store(store, model: str = None, verify: bool = False) -> str:
    """The store catalogue (optionally one model, optionally verified) as one string."""
    if not hasattr(store, "versions"):
        store = ModelStore(store)
    names = [model] if model is not None else store.models()
    lines = [f"model store at {store.backend.describe()}: {len(names)} model(s)"]
    for name in names:
        manifests = store.versions(name)
        latest = manifests[-1].version
        lines.append(f"\n{name} ({len(manifests)} version(s), latest v{latest}):")
        for manifest in manifests:
            row = (
                f"  v{manifest.version}  sha256-{manifest.content_hash[:12]}  "
                f"{manifest.model_type}  optimize={manifest.optimize} dtype={manifest.dtype}  "
                f"{manifest.blob_bytes}B  {manifest.created_at}"
            )
            if verify:
                try:
                    store.load_manifest(manifest)
                    row += "  [ok]"
                except StoreIntegrityError as exc:
                    row += f"  [CORRUPT: {exc}]"
            lines.append(row)
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", help="store root directory (LocalDirBackend)")
    parser.add_argument("--model", default=None, help="limit the listing to one model name")
    parser.add_argument(
        "--verify",
        action="store_true",
        help="re-hash every listed blob against its manifest (slow but certain)",
    )
    args = parser.parse_args()
    print(dump_store(args.root, model=args.model, verify=args.verify))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
