"""Documentation checks: internal links resolve, fenced examples run.

Two passes over ``README.md`` and every ``docs/*.md``:

1. **Links.** Every relative markdown link (``[text](path)`` or
   ``[text](path#anchor)``) must point at an existing file or directory,
   and an anchor must match a heading in the target file (GitHub-style
   slugs).  External links (``http(s)://``) are not fetched -- CI must
   not flake on the network.
2. **Doctests.** Fenced code blocks whose info string is ``python
   doctest`` are extracted and executed with :mod:`doctest` (equivalent
   to ``python -m doctest`` on a file holding the block).  Mark an
   example testable only when it is self-contained and cheap; plain
   ``python`` blocks are illustrative and stay unexecuted.

Run from the repo root (CI job ``docs``)::

    PYTHONPATH=src python tools/check_docs.py

Exit code 0 on success; failures are listed one per line.  Importable
(``check_links`` / ``check_doctests``) so the test suite runs the same
checks as CI (see ``tests/test_docs.py``).
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` -- excluding images and in-page ``#`` / external links.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
#: Fenced block opened with ```<info> ... closed with ```
_FENCE = re.compile(r"^```([^\n`]*)\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL)
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def doc_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, punctuation out."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\s-]", "", slug, flags=re.UNICODE)
    return re.sub(r"\s+", "-", slug)


def _anchors(path: Path) -> set:
    return {_github_slug(match) for match in _HEADING.findall(path.read_text(encoding="utf-8"))}


def check_links(files: List[Path] = None) -> List[str]:
    """Return a list of broken-link descriptions (empty = all good)."""
    errors = []
    for path in files or doc_files():
        text = path.read_text(encoding="utf-8")
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            base, _, anchor = target.partition("#")
            rel = path.parent / base if base else path
            if not rel.exists():
                errors.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
                continue
            if anchor and rel.suffix == ".md" and _github_slug(anchor) not in _anchors(rel):
                errors.append(f"{path.relative_to(REPO_ROOT)}: missing anchor -> {target}")
    return errors


def testable_blocks(files: List[Path] = None) -> List[Tuple[str, str]]:
    """(label, source) for every fenced block marked ``python doctest``."""
    blocks = []
    for path in files or doc_files():
        text = path.read_text(encoding="utf-8")
        for index, match in enumerate(_FENCE.finditer(text)):
            info = match.group(1).strip().lower().split()
            if info[:2] == ["python", "doctest"]:
                label = f"{path.relative_to(REPO_ROOT)}[block {index}]"
                blocks.append((label, match.group(2)))
    return blocks


def check_doctests(files: List[Path] = None) -> List[str]:
    """Run every testable block; return failure descriptions."""
    errors = []
    runner = doctest.DocTestRunner(verbose=False, optionflags=doctest.ELLIPSIS)
    parser = doctest.DocTestParser()
    blocks = testable_blocks(files)
    if not blocks:
        errors.append("no fenced examples marked `python doctest` found -- docs lost their tested examples")
        return errors
    for label, source in blocks:
        test = parser.get_doctest(source, {}, label, label, 0)
        result = runner.run(test, clear_globs=True)
        if result.failed:
            errors.append(f"{label}: {result.failed} of {result.attempted} doctest example(s) failed")
    return errors


def main() -> int:
    # The docs' examples import repro.*; make `src` importable when the
    # caller forgot PYTHONPATH.
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    files = doc_files()
    errors = check_links(files) + check_doctests(files)
    for error in errors:
        print(f"FAIL: {error}")
    print(
        f"checked {len(files)} doc file(s), "
        f"{len(testable_blocks(files))} testable example block(s): "
        + ("FAILED" if errors else "ok")
    )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
